// Minimal POSIX stream-socket wrappers for the distributed measurement
// subsystem (distd). Two transports:
//
//   unix:<path>        — Unix-domain stream socket (the WorkerPool default:
//                        lowest overhead, no port allocation, private to
//                        the host).
//   tcp:<ip>:<port>    — loopback/remote TCP, so the same worker binary
//                        can later connect from another host (the ISSUE's
//                        RPCRunner direction). Only numeric IPv4 addresses
//                        are resolved here; name resolution is the
//                        caller's job.
//
// Both classes own their file descriptor (move-only, closed on
// destruction). All waiting is poll(2)-based so every blocking operation
// takes a millisecond deadline; SIGPIPE is never raised (MSG_NOSIGNAL).
#pragma once

#include <optional>
#include <string>

namespace tvmbo::distd {

/// A connected stream socket (move-only fd owner).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Connects to "unix:<path>" or "tcp:<ipv4>:<port>". Throws CheckError
  /// on a malformed endpoint or connection failure.
  static Socket connect(const std::string& endpoint);

 private:
  int fd_ = -1;
};

/// A listening socket bound to a connectable endpoint string.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket();

  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;
  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;

  /// Binds + listens on a fresh Unix-domain socket at `path` (must not
  /// exist; unlinked again on destruction). Throws CheckError on failure
  /// (including paths longer than sockaddr_un allows).
  static ListenSocket unix_domain(const std::string& path);

  /// Binds + listens on 127.0.0.1:`port` (0 = ephemeral; the chosen port
  /// is reflected in endpoint()). Throws CheckError on failure.
  static ListenSocket tcp_loopback(int port = 0);

  /// Accepts one connection, waiting at most `timeout_ms` (-1 = forever).
  /// nullopt on timeout; throws CheckError on a socket error.
  std::optional<Socket> accept(int timeout_ms);

  /// The string a worker passes to Socket::connect.
  const std::string& endpoint() const { return endpoint_; }

  bool valid() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string endpoint_;
  std::string unlink_path_;  ///< unix socket file to remove on close
};

}  // namespace tvmbo::distd
