// tvmbo_serve: multi-tenant tuning-as-a-service daemon.
//
// Hosts one shared elastic worker fleet plus the serve scheduler and a
// socket front end, then serves concurrent tuning jobs submitted by
// tvmbo_client until SIGTERM/SIGINT, at which point it drains: stops
// admitting, finishes in-flight trials, cancels unfinished jobs, and
// exits.
//
//   # Unix-domain socket daemon with 4 workers and a shared perf db:
//   tvmbo_serve --socket /tmp/tvmbo.sock --workers 4 --db perf.jsonl
//
//   # Loopback TCP on an ephemeral port (printed on stdout):
//   tvmbo_serve --tcp 0 --workers 2
//
// Options:
//   --socket PATH    unix-domain socket path (default transport)
//   --tcp PORT       loopback TCP instead (0 = ephemeral)
//   --workers N      worker fleet size (default 2)
//   --db FILE        global cross-tenant JSONL perf database; existing
//                    records also warm the config_lookup cache
//   --model FILE     saved transfer model (tvmbo_transfer train) backing
//                    config_lookup's predicted-top-k fallback
//   --trace FILE     lifecycle/trial trace log (JSONL)
//   --max-active N   global active-job cap (default 16, 0 = unlimited)
//   --tenant-quota N per-tenant active-job cap (default 4, 0 = unlimited)
//   --max-budget N   per-job evaluation budget ceiling (default 10000)
//   --worker-bin P   worker executable override (else auto-resolved)
//
// Prints "serving on <endpoint>" once ready (CI and scripts wait for
// it). Exit status: 0 on clean drain, 2 on usage errors.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>

#include "runtime/trace_log.h"
#include "serve/scheduler.h"
#include "serve/server.h"

using namespace tvmbo;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--socket PATH | --tcp PORT) [--workers N] "
               "[--db FILE] [--model FILE] [--trace FILE] [--max-active N] "
               "[--tenant-quota N] [--max-budget N] [--worker-bin P]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions server_opts;
  serve::SchedulerOptions sched_opts;
  std::string trace_path;
  bool have_endpoint = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--socket") {
      server_opts.transport = "unix";
      server_opts.socket_path = value();
      have_endpoint = true;
    } else if (arg == "--tcp") {
      server_opts.transport = "tcp";
      server_opts.tcp_port = std::atoi(value().c_str());
      have_endpoint = true;
    } else if (arg == "--workers") {
      sched_opts.pool.num_workers =
          static_cast<std::size_t>(std::atoi(value().c_str()));
    } else if (arg == "--db") {
      sched_opts.perf_db_path = value();
    } else if (arg == "--model") {
      sched_opts.transfer_model_path = value();
    } else if (arg == "--trace") {
      trace_path = value();
    } else if (arg == "--max-active") {
      sched_opts.max_active_jobs =
          static_cast<std::size_t>(std::atoi(value().c_str()));
    } else if (arg == "--tenant-quota") {
      sched_opts.max_jobs_per_tenant =
          static_cast<std::size_t>(std::atoi(value().c_str()));
    } else if (arg == "--max-budget") {
      sched_opts.max_budget =
          static_cast<std::size_t>(std::atoi(value().c_str()));
    } else if (arg == "--worker-bin") {
      sched_opts.pool.worker_binary = value();
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
    }
  }
  if (!have_endpoint || sched_opts.pool.num_workers == 0) usage(argv[0]);

  std::unique_ptr<runtime::TraceLog> trace;
  if (!trace_path.empty()) {
    trace = std::make_unique<runtime::TraceLog>(trace_path);
    sched_opts.trace = trace.get();
  }

  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);  // vanished clients surface as EPIPE

  serve::Scheduler scheduler(std::move(sched_opts));
  serve::ServeServer server(&scheduler, server_opts);

  std::printf("serving on %s\n", server.endpoint().c_str());
  std::fflush(stdout);

  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::fprintf(stderr, "draining...\n");
  // Drain first so in-flight jobs emit terminal events while their
  // client connections still exist, then tear down the socket front.
  scheduler.drain();
  server.shutdown();
  return 0;
}
