// tvmbo_lint: static config-space linter.
//
// Runs the loop-IR static analysis pipeline (src/analysis/: structural
// verifier, affine bounds prover, parallel-race prover) over configured
// kernel schedules WITHOUT executing anything — the same checks the
// measurement engine's --screen pre-screener applies per trial, exposed as
// a standalone CLI for auditing whole configuration spaces.
//
//   # Lint one configuration:
//   tvmbo_lint --kernel 3mm --size mini --tiles 8,8,4,8,4,8
//
//   # Sample-sweep every kernel's fully widened schedule space
//   # (parallel + vectorize + unroll + pack knobs):
//   tvmbo_lint --kernel all --size mini --sweep --samples 64
//
//   # Exhaustively lint a small space:
//   tvmbo_lint --kernel lu --size mini --sweep --exhaustive
//
// Options:
//   --kernel K     3mm | gemm | 2mm | syrk | lu | cholesky | all
//                  (default all)
//   --size S       mini | small | medium | large | extralarge
//                  (default mini)
//   --tiles a,b,.. lint exactly this tile vector (base form, or extended
//                  with trailing [parallel_axis, threads] or
//                  [parallel_axis, threads, vec_axis, unroll, pack]);
//                  requires a single --kernel
//   --sweep        lint many configurations from the kernel's fully
//                  widened tuned space (tile ordinals plus the
//                  parallel_axis/threads/vec_axis/unroll/pack knobs —
//                  every sampled config exercises the race prover and
//                  the pack-placement proofs)
//   --samples N    configurations sampled per kernel in --sweep mode
//                  (default 64)
//   --exhaustive   lint every configuration in the space instead of
//                  sampling (refuses spaces larger than 1e6)
//   --threads N    cap for the thread-count knob candidates in the swept
//                  space (default 4; 0 = all hardware threads)
//   --seed N       sampling seed (default 2023)
//   --verbose      print the lowered IR for accepted configs too
//   --explain      for parallel-loop-race rejections, print the concrete
//                  counterexample witness: the two iteration vectors and
//                  the aliasing tensor element the exact solver found
//                  (validated by replaying both accesses through the
//                  affine evaluator)
//   --no-cache     disable the structural proof cache (every config is
//                  proven from scratch; for differential cache testing)
//   --features     with --tiles: instead of linting, print the transfer
//                  feature vector (src/transfer/features.h) extracted
//                  from the configured schedule's lowered IR — the exact
//                  columns the cross-kernel cost model trains on
//
// Race verdicts are three-valued (see src/analysis/dependence.h):
//   proven-safe    rule-based or exact-solver disjointness proof; the
//                  config is accepted
//   proven-racy    rule `parallel-loop-race` — a concrete conflicting
//                  iteration pair exists and replayed successfully
//                  (--explain prints it)
//   unknown        rule `parallel-loop-unproven` — a solver work bound
//                  was hit; rejected conservatively, never guessed
//
// Exit status: 0 when every linted configuration is clean, 1 when any
// violation was found, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/config_screen.h"
#include "analysis/proof_cache.h"
#include "common/rng.h"
#include "kernels/polybench.h"
#include "kernels/te_programs.h"
#include "te/printer.h"
#include "transfer/features.h"

using namespace tvmbo;

namespace {

struct Args {
  std::string kernel = "all";
  std::string size = "mini";
  std::vector<std::int64_t> tiles;
  bool have_tiles = false;
  bool sweep = false;
  std::size_t samples = 64;
  bool exhaustive = false;
  std::int64_t threads = 4;
  std::uint64_t seed = 2023;
  bool verbose = false;
  bool explain = false;
  bool no_cache = false;
  bool features = false;
};

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s [--kernel K|all] [--size S] [--tiles a,b,...] "
               "[--sweep] [--samples N] [--exhaustive] [--threads N] "
               "[--seed N] [--verbose] [--explain] [--no-cache] "
               "[--features]\n"
               "\n"
               "Race verdicts are three-valued:\n"
               "  proven-safe   disjointness proof found; config accepted\n"
               "  proven-racy   [parallel-loop-race] concrete conflicting\n"
               "                iteration pair, validated by replaying both\n"
               "                accesses (--explain prints the witness)\n"
               "  unknown       [parallel-loop-unproven] solver work bound\n"
               "                hit; rejected conservatively\n"
               "\n"
               "Exit status: 0 every linted configuration clean,\n"
               "             1 at least one violation found,\n"
               "             2 usage error.\n",
               argv0);
}

[[noreturn]] void usage(const char* argv0) {
  print_usage(stderr, argv0);
  std::exit(2);
}

std::vector<std::int64_t> parse_tiles(const std::string& text) {
  std::vector<std::int64_t> tiles;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t next = text.find(',', pos);
    if (next == std::string::npos) next = text.size();
    tiles.push_back(std::stoll(text.substr(pos, next - pos)));
    pos = next + 1;
  }
  return tiles;
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--kernel") args.kernel = value();
    else if (flag == "--size") args.size = value();
    else if (flag == "--tiles") {
      args.tiles = parse_tiles(value());
      args.have_tiles = true;
    } else if (flag == "--sweep") args.sweep = true;
    else if (flag == "--samples") args.samples = std::stoul(value());
    else if (flag == "--exhaustive") args.exhaustive = true;
    else if (flag == "--threads") args.threads = std::stoll(value());
    else if (flag == "--seed") args.seed = std::stoull(value());
    else if (flag == "--verbose") args.verbose = true;
    else if (flag == "--explain") args.explain = true;
    else if (flag == "--no-cache") args.no_cache = true;
    else if (flag == "--features") args.features = true;
    else if (flag == "--help" || flag == "-h") {
      print_usage(stdout, argv[0]);
      std::exit(0);
    } else usage(argv[0]);
  }
  if (args.features && !args.have_tiles) {
    std::fprintf(stderr, "error: --features requires --tiles\n");
    std::exit(2);
  }
  if (!args.have_tiles && !args.sweep) usage(argv[0]);
  if (args.have_tiles && args.sweep) {
    std::fprintf(stderr, "error: --tiles and --sweep are exclusive\n");
    std::exit(2);
  }
  if (args.have_tiles && args.kernel == "all") {
    std::fprintf(stderr, "error: --tiles requires a single --kernel\n");
    std::exit(2);
  }
  return args;
}

std::string tiles_to_string(const std::vector<std::int64_t>& tiles) {
  std::string out = "[";
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(tiles[i]);
  }
  return out + "]";
}

std::string ir_excerpt(const te::Stmt& stmt) {
  constexpr std::size_t kMax = 600;
  std::string ir = te::to_string(stmt);
  if (ir.size() > kMax) ir = ir.substr(0, kMax) + "...";
  return ir;
}

/// Lints one tile vector: instantiates the schedule (construction failures
/// — e.g. a rejected parallel axis — count as violations too) and runs the
/// full verifier + race prover over the lowered IR. Returns the number of
/// violations found and updates `stats`.
std::size_t lint_config(const std::shared_ptr<kernels::TeKernelData>& data,
                        const std::vector<std::int64_t>& tiles,
                        analysis::ScreenStats& stats, bool verbose,
                        bool explain) {
  const std::string label =
      data->kernel + " tiles=" + tiles_to_string(tiles);
  analysis::ScreenResult result;
  std::string ir;
  try {
    kernels::TeProgramInstance instance(data, tiles);
    std::vector<te::Tensor> params;
    for (const auto& [tensor, array] : instance.bindings()) {
      (void)array;
      params.push_back(tensor);
    }
    result = analysis::screen_program(instance.stmt(), params);
    ir = ir_excerpt(instance.stmt());
  } catch (const std::exception& e) {
    // Schedule construction itself rejected the config (annotate_loop's
    // race gate, tile validation, ...). Attribute the message to its rule
    // id when it carries one, else file it under schedule-reject.
    analysis::Violation violation;
    const std::string what = e.what();
    const std::size_t colon = what.find(": ");
    const bool has_rule =
        colon != std::string::npos && what.find(' ') > colon;
    violation.rule = has_rule ? what.substr(0, colon) : "schedule-reject";
    violation.message = has_rule ? what.substr(colon + 2) : what;
    result.violations.push_back(std::move(violation));
  }
  stats.add(result);
  if (result.ok()) {
    if (verbose) {
      std::printf("OK   %s\n%s\n", label.c_str(), ir.c_str());
    }
    return 0;
  }
  std::printf("FAIL %s\n", label.c_str());
  for (const analysis::Violation& violation : result.violations) {
    std::printf("  [%s] %s\n", violation.rule.c_str(),
                violation.message.c_str());
    if (explain && !violation.witness.empty()) {
      std::printf("    witness: %s\n", violation.witness.c_str());
    }
    if (!violation.where.empty()) {
      std::printf("    at: %s\n", violation.where.c_str());
    }
  }
  if (!ir.empty()) std::printf("  IR:\n%s\n", ir.c_str());
  return result.violations.size();
}

std::size_t lint_kernel(const Args& args, const std::string& kernel) {
  const kernels::Dataset dataset = kernels::dataset_from_name(args.size);
  const std::vector<std::int64_t> dims =
      kernels::polybench_dims(kernel, dataset);
  const std::shared_ptr<kernels::TeKernelData> data =
      kernels::make_te_kernel_data(kernel, dims);

  analysis::ScreenStats stats;
  std::size_t violations = 0;

  if (args.have_tiles) {
    violations += lint_config(data, args.tiles, stats, /*verbose=*/true,
                              args.explain);
  } else {
    kernels::ScheduleKnobs knobs;
    knobs.enabled = true;
    knobs.max_threads = args.threads;
    knobs.vectorize = true;
    knobs.unroll = true;
    knobs.pack = true;
    const cs::ConfigurationSpace space =
        kernels::build_space(kernel, dims, knobs);
    if (args.exhaustive) {
      constexpr std::uint64_t kExhaustiveLimit = 1000000;
      if (!space.fully_discrete() ||
          space.cardinality() > kExhaustiveLimit) {
        std::fprintf(stderr,
                     "error: %s space too large for --exhaustive "
                     "(%llu configurations); use --samples\n",
                     kernel.c_str(),
                     static_cast<unsigned long long>(space.cardinality()));
        std::exit(2);
      }
      for (std::uint64_t flat = 0; flat < space.cardinality(); ++flat) {
        violations += lint_config(
            data, space.values_int(space.from_flat_index(flat)), stats,
            args.verbose, args.explain);
      }
    } else {
      Rng rng(args.seed);
      for (std::size_t i = 0; i < args.samples; ++i) {
        violations += lint_config(data, space.values_int(space.sample(rng)),
                                  stats, args.verbose, args.explain);
      }
    }
  }

  std::printf("%s (%s): %s\n", kernel.c_str(), args.size.c_str(),
              stats.summary().c_str());
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  std::vector<std::string> kernel_list;
  if (args.kernel == "all") {
    kernel_list = {"3mm", "gemm", "2mm", "syrk", "lu", "cholesky"};
  } else {
    if (!kernels::te_backend_supported(args.kernel)) {
      std::fprintf(stderr, "error: kernel '%s' has no TE program\n",
                   args.kernel.c_str());
      return 2;
    }
    kernel_list = {args.kernel};
  }

  if (args.features) {
    const std::string& kernel = kernel_list[0];
    const std::vector<std::int64_t> dims = kernels::polybench_dims(
        kernel, kernels::dataset_from_name(args.size));
    std::vector<double> values;
    try {
      values = transfer::featurize_config(kernel, dims, args.tiles);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    const std::vector<std::string>& names = transfer::feature_names();
    std::printf("features: %s %s tiles=%s (schema v%d)\n", kernel.c_str(),
                args.size.c_str(), tiles_to_string(args.tiles).c_str(),
                transfer::kFeatureSchemaVersion);
    for (std::size_t i = 0; i < values.size(); ++i) {
      std::printf("  %-26s %.6f\n", names[i].c_str(), values[i]);
    }
    return 0;
  }

  if (args.no_cache) analysis::ProofCache::global().set_enabled(false);

  std::size_t total_violations = 0;
  for (const std::string& kernel : kernel_list) {
    total_violations += lint_kernel(args, kernel);
  }
  std::printf("%s\n",
              analysis::ProofCache::global().stats().summary().c_str());
  if (total_violations > 0) {
    std::printf("lint: %zu violation(s) found\n", total_violations);
    return 1;
  }
  std::printf("lint: clean\n");
  return 0;
}
