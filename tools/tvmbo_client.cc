// tvmbo_client: CLI for the tvmbo_serve tuning daemon.
//
//   # Submit a job and stream its progress as JSONL until it finishes:
//   tvmbo_client submit --connect unix:/tmp/tvmbo.sock \
//       --kernel 3mm --size mini --strategy ytopt --budget 40
//
//   # Inspect / control running jobs:
//   tvmbo_client status --connect unix:/tmp/tvmbo.sock --job 3
//   tvmbo_client cancel --connect unix:/tmp/tvmbo.sock --job 3
//   tvmbo_client list   --connect unix:/tmp/tvmbo.sock
//
//   # Instant-config lookup (never dispatches a measurement — answered
//   # from the daemon's cache or its transfer model):
//   tvmbo_client lookup --connect unix:/tmp/tvmbo.sock \
//       --kernel lu --size large --nthreads 1 --topk 3
//
// submit options (defaults in parentheses):
//   --kernel K      polybench kernel, required
//   --size S        dataset (large)
//   --strategy S    ytopt | random | gridsearch | ga | xgb (ytopt)
//   --budget N      max evaluations (100)
//   --nthreads N    != 1 tunes the parallel knobs too (1)
//   --seed N        session seed (2023)
//   --priority N    lane, 0 = most urgent (1)
//   --tenant T      tenant name for quota accounting (default)
//   --backend B     native | jit (native)
//   --repeat N      timed runs per evaluation (1)
//   --timeout S     per-run timeout seconds (0 = none)
//
// submit streams every event frame as one JSON line on stdout. Exit
// status: 0 when the job completes, 3 when it is cancelled, 2 on usage
// or submission errors (quota, bad request, dead daemon).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "distd/protocol.h"
#include "serve/client.h"

using namespace tvmbo;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s submit --connect ENDPOINT --kernel K [opts]\n"
               "       %s status --connect ENDPOINT --job N\n"
               "       %s cancel --connect ENDPOINT --job N\n"
               "       %s list   --connect ENDPOINT\n"
               "       %s lookup --connect ENDPOINT --kernel K "
               "[--size S] [--nthreads N] [--topk N]\n",
               argv0, argv0, argv0, argv0, argv0);
  std::exit(2);
}

int run_submit(const std::string& endpoint, const serve::JobSpec& spec) {
  serve::ServeClient client(endpoint);
  const auto outcome = client.submit(spec);
  if (!outcome.ok()) {
    std::fprintf(stderr, "submit rejected: %s: %s\n",
                 outcome.error_code.c_str(), outcome.message.c_str());
    return 2;
  }
  std::fprintf(stderr, "job %llu accepted\n",
               static_cast<unsigned long long>(outcome.job));
  for (;;) {
    const auto event = client.next_event(/*timeout_ms=*/1000);
    if (!event.has_value()) continue;
    std::printf("%s\n", event->dump().c_str());
    std::fflush(stdout);
    if (!event->contains("event")) continue;
    const std::string& name = event->at("event").as_string();
    if (name == "job_complete") return 0;
    if (name == "job_cancel") return 3;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  const std::string command = argv[1];
  std::string endpoint;
  std::uint64_t job = 0;
  bool have_job = false;
  serve::JobSpec spec;
  std::int64_t topk = 1;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--connect") {
      endpoint = value();
    } else if (arg == "--job") {
      job = static_cast<std::uint64_t>(std::atoll(value().c_str()));
      have_job = true;
    } else if (arg == "--kernel") {
      spec.kernel = value();
    } else if (arg == "--size") {
      spec.size = value();
    } else if (arg == "--strategy") {
      spec.strategy = value();
    } else if (arg == "--budget") {
      spec.budget = static_cast<std::size_t>(std::atoll(value().c_str()));
    } else if (arg == "--nthreads") {
      spec.nthreads = std::atoll(value().c_str());
    } else if (arg == "--seed") {
      spec.seed = static_cast<std::uint64_t>(std::atoll(value().c_str()));
    } else if (arg == "--priority") {
      spec.priority = std::atoi(value().c_str());
    } else if (arg == "--tenant") {
      spec.tenant = value();
    } else if (arg == "--backend") {
      spec.backend = value();
    } else if (arg == "--repeat") {
      spec.repeat = std::atoi(value().c_str());
    } else if (arg == "--timeout") {
      spec.timeout_s = std::atof(value().c_str());
    } else if (arg == "--topk") {
      topk = std::atoll(value().c_str());
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
    }
  }
  if (endpoint.empty()) usage(argv[0]);

  try {
    if (command == "submit") {
      if (spec.kernel.empty()) usage(argv[0]);
      return run_submit(endpoint, spec);
    }
    if (command == "status") {
      if (!have_job) usage(argv[0]);
      const auto reply = serve::job_status(endpoint, job);
      if (!reply.has_value()) {
        std::fprintf(stderr, "no job %llu\n",
                     static_cast<unsigned long long>(job));
        return 2;
      }
      std::printf("%s\n", reply->dump().c_str());
      return 0;
    }
    if (command == "cancel") {
      if (!have_job) usage(argv[0]);
      if (!serve::job_cancel(endpoint, job)) {
        std::fprintf(stderr, "no cancellable job %llu\n",
                     static_cast<unsigned long long>(job));
        return 2;
      }
      std::printf("cancelled %llu\n", static_cast<unsigned long long>(job));
      return 0;
    }
    if (command == "list") {
      std::printf("%s\n", serve::job_list(endpoint).dump().c_str());
      return 0;
    }
    if (command == "lookup") {
      if (spec.kernel.empty()) usage(argv[0]);
      serve::LookupSpec lookup;
      lookup.kernel = spec.kernel;
      lookup.size = spec.size;
      lookup.nthreads = spec.nthreads;
      lookup.topk = topk;
      const Json reply = serve::config_lookup(endpoint, lookup);
      std::printf("%s\n", reply.dump().c_str());
      // "none" (no cached record, no model) is still exit 0: the query
      // was valid, the daemon just has nothing to offer yet.
      return distd::frame_type(reply) == "error" ? 2 : 0;
    }
  } catch (const CheckError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  usage(argv[0]);
}
