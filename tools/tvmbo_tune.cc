// tvmbo_tune: command-line autotuner.
//
//   tvmbo_tune --kernel lu --size large --strategy all --evals 100
//              --seed 2023 --device sim --objective runtime --out lu_run
//
// Options:
//   --kernel    lu | cholesky | 3mm | gemm | 2mm | syrk      (default lu)
//   --size      mini | small | medium | large | extralarge   (default large)
//   --strategy  ytopt | random | gridsearch | ga | xgb | all (default all)
//   --evals     evaluations per strategy                     (default 100)
//   --seed      RNG seed                                     (default 2023)
//   --device    sim | cpu    (cpu actually executes the kernel; keep the
//                             size small for that)           (default sim)
//   --objective runtime | energy | edp                       (default runtime)
//   --xgb-cap   reproduce the paper's 56-eval XGB artifact   (default 56)
//   --out       prefix for <out>_process.csv / <out>_db.jsonl (optional)
//   --parallel  measure batch members concurrently on the thread pool
//               (per-trial fault isolation; results stay in submission
//               order; stateful devices like sim are auto-serialized)
//   --ytopt-batch N  qLCB proposal batch for ytopt (default 1 = paper's
//               sequential AMBS; pair N>1 with --parallel)
//   --retries N re-run transiently failing trials up to N times
//   --trace F   append the per-trial JSON-lines event log to file F
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "framework/figures.h"
#include "framework/session.h"
#include "kernels/polybench.h"
#include "runtime/cpu_device.h"
#include "runtime/swing_sim.h"
#include "runtime/trace_log.h"

using namespace tvmbo;

namespace {

struct Args {
  std::string kernel = "lu";
  std::string size = "large";
  std::string strategy = "all";
  std::size_t evals = 100;
  std::uint64_t seed = 2023;
  std::string device = "sim";
  std::string objective = "runtime";
  std::size_t xgb_cap = 56;
  std::string out;
  bool parallel = false;
  std::size_t ytopt_batch = 1;
  int retries = 0;
  std::string trace;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--kernel K] [--size S] [--strategy T] "
               "[--evals N] [--seed N] [--device sim|cpu] "
               "[--objective runtime|energy|edp] [--xgb-cap N] "
               "[--out PREFIX] [--parallel] [--ytopt-batch N] "
               "[--retries N] [--trace FILE]\n",
               argv0);
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--kernel") args.kernel = value();
    else if (flag == "--size") args.size = value();
    else if (flag == "--strategy") args.strategy = value();
    else if (flag == "--evals") args.evals = std::stoul(value());
    else if (flag == "--seed") args.seed = std::stoull(value());
    else if (flag == "--device") args.device = value();
    else if (flag == "--objective") args.objective = value();
    else if (flag == "--xgb-cap") args.xgb_cap = std::stoul(value());
    else if (flag == "--out") args.out = value();
    else if (flag == "--parallel") args.parallel = true;
    else if (flag == "--ytopt-batch") args.ytopt_batch = std::stoul(value());
    else if (flag == "--retries") args.retries = std::stoi(value());
    else if (flag == "--trace") args.trace = value();
    else usage(argv[0]);
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  const kernels::Dataset dataset = kernels::dataset_from_name(args.size);
  const bool executable = args.device == "cpu";
  const autotvm::Task task =
      kernels::make_task(args.kernel, dataset, executable);

  runtime::SwingSimDevice sim(args.seed);
  runtime::CpuDevice cpu;
  runtime::Device* device = nullptr;
  if (args.device == "sim") device = &sim;
  else if (args.device == "cpu") device = &cpu;
  else usage(argv[0]);

  framework::SessionOptions options;
  options.max_evaluations = args.evals;
  options.seed = args.seed;
  options.xgb_paper_eval_cap = args.xgb_cap;
  if (args.objective == "runtime") {
    options.objective = framework::Objective::kRuntime;
  } else if (args.objective == "energy") {
    options.objective = framework::Objective::kEnergy;
  } else if (args.objective == "edp") {
    options.objective = framework::Objective::kEnergyDelay;
  } else {
    usage(argv[0]);
  }
  options.measure.parallel = args.parallel;
  options.measure.retry.max_retries = args.retries;
  options.ytopt_batch_size = args.ytopt_batch;
  std::unique_ptr<runtime::TraceLog> trace;
  if (!args.trace.empty()) {
    trace = std::make_unique<runtime::TraceLog>(args.trace);
    options.measure.trace = trace.get();
  }
  framework::AutotuningSession session(&task, device, options);

  std::vector<framework::SessionResult> results;
  if (args.strategy == "all") {
    results = session.run_all();
  } else {
    framework::StrategyKind kind;
    if (args.strategy == "ytopt") kind = framework::StrategyKind::kYtopt;
    else if (args.strategy == "random")
      kind = framework::StrategyKind::kAutotvmRandom;
    else if (args.strategy == "gridsearch")
      kind = framework::StrategyKind::kAutotvmGridSearch;
    else if (args.strategy == "ga")
      kind = framework::StrategyKind::kAutotvmGa;
    else if (args.strategy == "xgb")
      kind = framework::StrategyKind::kAutotvmXgb;
    else usage(argv[0]);
    results.push_back(session.run(kind));
  }

  const std::string title = args.kernel + " / " + args.size + " (" +
                            args.device + ", objective " + args.objective +
                            ")";
  std::printf("%s", framework::render_minimum_summary(results, title, 0.0)
                        .c_str());

  if (!args.out.empty()) {
    framework::process_over_time_table(results).write_file(
        args.out + "_process.csv");
    framework::minimum_runtimes_table(results).write_file(
        args.out + "_minimum.csv");
    runtime::PerfDatabase merged;
    for (const auto& result : results) {
      for (const auto& record : result.db.records()) merged.add(record);
    }
    merged.save(args.out + "_db.jsonl");
    std::printf("wrote %s_process.csv, %s_minimum.csv, %s_db.jsonl\n",
                args.out.c_str(), args.out.c_str(), args.out.c_str());
  }
  return 0;
}
