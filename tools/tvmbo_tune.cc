// tvmbo_tune: command-line autotuner.
//
//   tvmbo_tune --kernel lu --size large --strategy all --evals 100
//              --seed 2023 --device sim --objective runtime --out lu_run
//
// Options:
//   --kernel    lu | cholesky | 3mm | gemm | 2mm | syrk      (default lu)
//   --size      mini | small | medium | large | extralarge   (default large)
//   --strategy  ytopt | random | gridsearch | ga | xgb | all (default all)
//   --evals     evaluations per strategy                     (default 100)
//   --seed      RNG seed                                     (default 2023)
//   --device    sim | cpu    (cpu actually executes the kernel; keep the
//                             size small for that)           (default sim)
//   --objective runtime | energy | edp                       (default runtime)
//   --xgb-cap   reproduce the paper's 56-eval XGB artifact   (default 56)
//   --out       prefix for <out>_process.csv / <out>_db.jsonl (optional)
//   --parallel  measure batch members concurrently on the thread pool
//               (per-trial fault isolation; results stay in submission
//               order; stateful devices like sim are auto-serialized)
//   --async     completion-driven streaming measurement: every slot is
//               refilled the moment a trial completes (no batch/wave
//               barrier), results are told back to the strategy in
//               completion order, and the process clock is real
//               wall-clock. Pair with --parallel (and --runner proc
//               --workers N) for overlap; without --parallel the async
//               schedule is serial and fixed-seed deterministic
//   --ytopt-batch N  qLCB proposal batch for ytopt (default 1 = paper's
//               sequential AMBS; pair N>1 with --parallel)
//   --retries N re-run transiently failing trials up to N times
//   --trace F   append the per-trial JSON-lines event log to file F
//   --backend B execution tier for --device cpu: native (hand-written
//               tiled kernels, default) | interp | closure | jit. The jit
//               backend emits C, invokes the system compiler, and caches
//               shared objects content-addressed, so repeated
//               configurations — and whole repeated runs — skip
//               compilation; a jit_cache_stats summary is printed (and
//               traced with --trace) at the end
//   --jit-cache D  artifact-cache directory for --backend jit
//               (default $TVMBO_JIT_CACHE, else <tmp>/tvmbo-jit-cache)
//   --warm-start F seed ytopt with the records of a prior run's perf
//               database (the <out>_db.jsonl of that run); records for
//               other workloads or spaces are skipped (counts of seeded
//               vs skipped records are printed per strategy)
//   --transfer F rank configurations with a saved cross-kernel transfer
//               model (tvmbo_transfer train) and queue the predicted
//               top-k as ytopt's first — measured — proposals; works
//               for kernels the model never saw (the features are
//               kernel-agnostic)
//   --transfer-topk N  how many model-ranked seeds to queue (default 5)
//   --transfer-pool N  candidate pool the model ranks (default 256)
//   --threads N add parallel-schedule knobs (parallel_axis, threads) to
//               the tuned space for --device cpu with a TE-program backend
//               (interp/closure/jit). N caps the thread-count candidates;
//               0 means all cores; 1 (default) disables the knobs. The
//               closure tier dispatches on the built-in thread pool, the
//               jit tier emits OpenMP pragmas (compiled with -fopenmp when
//               the toolchain supports it, serial fallback otherwise);
//               float64 outputs stay bit-identical to the interpreter
//               either way
//   --vectorize add a vec_axis knob ({0 = none, 1 = innermost,
//               2 = second-innermost}) to the tuned space; the chosen
//               axis is annotated kVectorized, the race prover certifies
//               it at lowering time, and the jit tier emits `#pragma omp
//               simd` (compiled with -fopenmp-simd, or subsumed by
//               -fopenmp) on exactly the certified loops. Float64 output
//               bits are unchanged (-ffp-contract=off)
//   --unroll    add an unroll knob ({0, 2, 4, 8}) — a structural split
//               whose inner loop is marked kUnrolled, straight-lined by
//               every tier within te::kUnrollMaxExtent
//   --pack      add a pack knob ({0, 1}) — array packing of the strided
//               operand into a contiguous scratch via Stage::cache_write
//               / te::pack_reads (proof-carrying: reads are redirected
//               only when provably in-window)
//   --runner R  measurement runner for --device cpu: local (in-process,
//               default) | proc (trials execute in out-of-process workers
//               with crash isolation and hard kill-based timeouts; see
//               src/distd/). Worker-lifecycle events land in --trace.
//   --workers N worker-fleet size for --runner proc (default 2); pair
//               with --parallel to keep all workers busy
//   --timeout S per-run measurement timeout in seconds (0 = off). With
//               --runner local this is cooperative (checked between
//               runs); with --runner proc a hung run is SIGKILLed at the
//               derived hard deadline
//   --screen    statically pre-screen every candidate (src/analysis/)
//               before dispatching it: configs that fail verification or
//               the race prover come back invalid with an
//               "analysis reject:" error and an analysis_reject trace
//               event, without spending a measurement worker. A summary
//               line reports rejects per strategy.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "analysis/proof_cache.h"
#include "codegen/artifact_cache.h"
#include "codegen/jit_program.h"
#include "distd/proc_device.h"
#include "framework/figures.h"
#include "framework/session.h"
#include "kernels/polybench.h"
#include "runtime/cpu_device.h"
#include "runtime/exec_backend.h"
#include "runtime/swing_sim.h"
#include "runtime/trace_log.h"
#include "transfer/cost_model.h"
#include "transfer/model_store.h"

using namespace tvmbo;

namespace {

struct Args {
  std::string kernel = "lu";
  std::string size = "large";
  std::string strategy = "all";
  std::size_t evals = 100;
  std::uint64_t seed = 2023;
  std::string device = "sim";
  std::string objective = "runtime";
  std::size_t xgb_cap = 56;
  std::string out;
  bool parallel = false;
  bool async = false;
  std::size_t ytopt_batch = 1;
  int retries = 0;
  std::string trace;
  std::string backend = "native";
  std::string jit_cache;
  std::string warm_start;
  std::string transfer;
  std::size_t transfer_topk = 5;
  std::size_t transfer_pool = 256;
  std::int64_t threads = 1;
  bool vectorize = false;
  bool unroll = false;
  bool pack = false;
  std::string runner = "local";
  std::size_t workers = 2;
  double timeout_s = 0.0;
  bool screen = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--kernel K] [--size S] [--strategy T] "
               "[--evals N] [--seed N] [--device sim|cpu] "
               "[--objective runtime|energy|edp] [--xgb-cap N] "
               "[--out PREFIX] [--parallel] [--async] [--ytopt-batch N] "
               "[--retries N] [--trace FILE] "
               "[--backend native|interp|closure|jit] [--jit-cache DIR] "
               "[--warm-start DB.jsonl] [--transfer MODEL.json] "
               "[--transfer-topk N] [--transfer-pool N] [--threads N] "
               "[--vectorize] [--unroll] [--pack] "
               "[--runner local|proc] [--workers N] [--timeout S] "
               "[--screen]\n",
               argv0);
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--kernel") args.kernel = value();
    else if (flag == "--size") args.size = value();
    else if (flag == "--strategy") args.strategy = value();
    else if (flag == "--evals") args.evals = std::stoul(value());
    else if (flag == "--seed") args.seed = std::stoull(value());
    else if (flag == "--device") args.device = value();
    else if (flag == "--objective") args.objective = value();
    else if (flag == "--xgb-cap") args.xgb_cap = std::stoul(value());
    else if (flag == "--out") args.out = value();
    else if (flag == "--parallel") args.parallel = true;
    else if (flag == "--async") args.async = true;
    else if (flag == "--ytopt-batch") args.ytopt_batch = std::stoul(value());
    else if (flag == "--retries") args.retries = std::stoi(value());
    else if (flag == "--trace") args.trace = value();
    else if (flag == "--backend") args.backend = value();
    else if (flag == "--jit-cache") args.jit_cache = value();
    else if (flag == "--warm-start") args.warm_start = value();
    else if (flag == "--transfer") args.transfer = value();
    else if (flag == "--transfer-topk") args.transfer_topk = std::stoul(value());
    else if (flag == "--transfer-pool") args.transfer_pool = std::stoul(value());
    else if (flag == "--threads") args.threads = std::stoll(value());
    else if (flag == "--vectorize") args.vectorize = true;
    else if (flag == "--unroll") args.unroll = true;
    else if (flag == "--pack") args.pack = true;
    else if (flag == "--runner") args.runner = value();
    else if (flag == "--workers") args.workers = std::stoul(value());
    else if (flag == "--timeout") args.timeout_s = std::stod(value());
    else if (flag == "--screen") args.screen = true;
    else usage(argv[0]);
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  const kernels::Dataset dataset = kernels::dataset_from_name(args.size);
  const auto backend = runtime::exec_backend_from_name(args.backend);
  if (!backend.has_value()) usage(argv[0]);
  codegen::JitOptions jit_options;
  jit_options.cache_dir = args.jit_cache;
  if (args.threads < 0) usage(argv[0]);
  kernels::ScheduleKnobs schedule_knobs;
  schedule_knobs.enabled = args.threads != 1;
  schedule_knobs.max_threads = args.threads;
  schedule_knobs.vectorize = args.vectorize;
  schedule_knobs.unroll = args.unroll;
  schedule_knobs.pack = args.pack;
  if (schedule_knobs.extended() && args.device != "cpu") {
    std::fprintf(stderr,
                 "note: --threads/--vectorize/--unroll/--pack only affect "
                 "--device cpu with a TE-program backend; ignoring\n");
    schedule_knobs = kernels::ScheduleKnobs{};
  }

  // Simulated devices never execute the kernel; only a cpu device needs a
  // backend-configured executable task.
  const autotvm::Task task =
      args.device == "cpu"
          ? kernels::make_task(args.kernel, dataset, *backend, jit_options,
                               schedule_knobs)
          : kernels::make_task(args.kernel, dataset, /*executable=*/false);

  // The trace log outlives the device: a ProcDevice's worker pool emits
  // lifecycle events (worker_exit on shutdown) through it from its
  // destructor.
  std::unique_ptr<runtime::TraceLog> trace;
  if (!args.trace.empty()) {
    trace = std::make_unique<runtime::TraceLog>(args.trace);
  }

  if (args.runner != "local" && args.runner != "proc") usage(argv[0]);
  if (args.runner == "proc" && args.device != "cpu") {
    std::fprintf(stderr,
                 "error: --runner proc requires --device cpu (the sim "
                 "device is a model, not a process)\n");
    return 2;
  }

  runtime::SwingSimDevice sim(args.seed);
  runtime::CpuDevice cpu;
  std::unique_ptr<distd::ProcDevice> proc;
  runtime::Device* device = nullptr;
  if (args.device == "sim") {
    device = &sim;
  } else if (args.device == "cpu") {
    if (args.runner == "proc") {
      distd::ProcDeviceOptions proc_options;
      proc_options.backend = *backend;
      proc_options.jit = jit_options;
      proc_options.seed = args.seed;
      proc_options.pool.num_workers = args.workers == 0 ? 1 : args.workers;
      proc_options.pool.trace = trace.get();
      proc = std::make_unique<distd::ProcDevice>(std::move(proc_options));
      device = proc.get();
    } else {
      device = &cpu;
    }
  } else {
    usage(argv[0]);
  }

  framework::SessionOptions options;
  options.max_evaluations = args.evals;
  options.seed = args.seed;
  options.xgb_paper_eval_cap = args.xgb_cap;
  if (args.objective == "runtime") {
    options.objective = framework::Objective::kRuntime;
  } else if (args.objective == "energy") {
    options.objective = framework::Objective::kEnergy;
  } else if (args.objective == "edp") {
    options.objective = framework::Objective::kEnergyDelay;
  } else {
    usage(argv[0]);
  }
  options.measure.parallel = args.parallel;
  options.async = args.async;
  options.measure.prescreen = args.screen;
  options.measure.retry.max_retries = args.retries;
  options.ytopt_batch_size = args.ytopt_batch;
  options.measure_timeout_s = args.timeout_s;
  if (trace != nullptr) options.measure.trace = trace.get();
  runtime::PerfDatabase warm_db;
  if (!args.warm_start.empty()) {
    warm_db = runtime::PerfDatabase::load(args.warm_start);
    options.warm_start = &warm_db;
    std::printf("warm start: %zu prior record(s) from %s\n", warm_db.size(),
                args.warm_start.c_str());
  }
  std::unique_ptr<transfer::CostModel> transfer_model;
  if (!args.transfer.empty()) {
    transfer_model = std::make_unique<transfer::CostModel>(
        transfer::load_model(args.transfer));
    if (!transfer_model->fitted()) {
      std::fprintf(stderr,
                   "error: transfer model %s has too few samples to rank\n",
                   args.transfer.c_str());
      return 2;
    }
    options.transfer_model = transfer_model.get();
    options.transfer_topk = args.transfer_topk;
    options.transfer_pool = args.transfer_pool;
    std::printf("transfer: model from %s (%zu sample(s))\n",
                args.transfer.c_str(), transfer_model->size());
  }
  options.record_backend = args.device == "sim" ? "sim" : args.backend;
  options.record_nthreads = args.threads;
  framework::AutotuningSession session(&task, device, options);

  std::vector<framework::SessionResult> results;
  if (args.strategy == "all") {
    results = session.run_all();
  } else {
    const std::optional<framework::StrategyKind> kind =
        framework::strategy_from_name(args.strategy);
    if (!kind.has_value()) usage(argv[0]);
    results.push_back(session.run(*kind));
  }

  const std::string title = args.kernel + " / " + args.size + " (" +
                            args.device + ", objective " + args.objective +
                            ")";
  std::printf("%s", framework::render_minimum_summary(results, title, 0.0)
                        .c_str());

  if (args.screen) {
    for (const framework::SessionResult& result : results) {
      std::printf("%s: analysis rejects: %zu of %zu evaluation(s)\n",
                  result.strategy.c_str(), result.analysis_rejects,
                  result.evaluations);
    }
    std::printf("%s\n",
                analysis::ProofCache::global().stats().summary().c_str());
  }

  if (!args.warm_start.empty()) {
    for (const framework::SessionResult& result : results) {
      const framework::WarmStartStats& ws = result.warm_start;
      std::printf(
          "%s: warm start seeded %zu record(s), skipped %zu "
          "(%zu other workload, %zu out of space)\n",
          result.strategy.c_str(), ws.seeded,
          ws.skipped_workload + ws.skipped_space, ws.skipped_workload,
          ws.skipped_space);
    }
  }
  if (!args.transfer.empty()) {
    for (const framework::SessionResult& result : results) {
      std::printf("%s: transfer queued %zu model-ranked seed(s)\n",
                  result.strategy.c_str(), result.transfer_seeds);
    }
  }

  if (args.device == "cpu" && *backend == runtime::ExecBackend::kJit) {
    codegen::ArtifactCache& cache = codegen::ArtifactCache::shared(jit_options);
    const codegen::CacheStats stats = cache.stats();
    std::printf(
        "jit cache: %zu hit(s), %zu miss(es), %zu failure(s), "
        "hit rate %.1f%%, %.2f s compiling, dir %s\n",
        stats.hits, stats.misses, stats.failures, 100.0 * stats.hit_rate(),
        stats.compile_s, cache.dir().c_str());
    if (trace != nullptr) {
      Json event = Json::object();
      event.set("event", "jit_cache_stats");
      event.set("hits", stats.hits);
      event.set("misses", stats.misses);
      event.set("failures", stats.failures);
      event.set("hit_rate", stats.hit_rate());
      event.set("compile_s", stats.compile_s);
      event.set("dir", cache.dir());
      // The compile flags (and, when schedule knobs are on, the probe
      // results and knob settings) are part of the cache key, so record
      // them with the stats.
      event.set("flags", jit_options.flags);
      if (schedule_knobs.enabled) {
        event.set("threads", args.threads);
        event.set("openmp", codegen::JitProgram::openmp_available(jit_options));
      }
      if (schedule_knobs.vectorize) {
        event.set("vectorize", true);
        event.set("simd", codegen::JitProgram::simd_available(jit_options));
      }
      if (schedule_knobs.unroll) event.set("unroll", true);
      if (schedule_knobs.pack) event.set("pack", true);
      trace->record(std::move(event));
    }
  }

  if (!args.out.empty()) {
    framework::process_over_time_table(results).write_file(
        args.out + "_process.csv");
    framework::minimum_runtimes_table(results).write_file(
        args.out + "_minimum.csv");
    runtime::PerfDatabase merged;
    for (const auto& result : results) {
      for (const auto& record : result.db.records()) merged.add(record);
    }
    merged.save(args.out + "_db.jsonl");
    std::printf("wrote %s_process.csv, %s_minimum.csv, %s_db.jsonl\n",
                args.out.c_str(), args.out.c_str(), args.out.c_str());
  }
  return 0;
}
