// Developer smoke: full 5-strategy comparison on LU-large against the
// simulated Swing device (the Fig 4/5 experiment), printed as tables.
#include <cstdio>

#include "framework/figures.h"
#include "framework/session.h"
#include "kernels/polybench.h"
#include "runtime/swing_sim.h"

using namespace tvmbo;

int main() {
  const autotvm::Task task = kernels::make_task("lu", kernels::Dataset::kLarge);
  runtime::SwingSimDevice device;
  framework::SessionOptions options;
  options.max_evaluations = 100;
  options.xgb_paper_eval_cap = 56;
  framework::AutotuningSession session(&task, &device, options);
  const auto results = session.run_all();
  std::printf("%s\n",
              framework::render_minimum_summary(results, "LU large", 1.659)
                  .c_str());
  return 0;
}
