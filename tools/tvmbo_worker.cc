// tvmbo_worker: out-of-process measurement worker (distd subsystem).
//
//   tvmbo_worker --connect unix:/tmp/tvmbo-distd-xyz/pool.sock
//                --worker-id 0 --heartbeat-ms 1000
//
// Spawned by the tuner's WorkerPool (--runner proc); connects back over
// the given endpoint, announces itself, and serves length-prefixed JSON
// measure requests until told to shut down. The endpoint syntax also
// accepts tcp:<ipv4>:<port>, so the same binary can be started by hand on
// another host against a TCP-listening pool.
//
// Options:
//   --connect E      endpoint to dial (required)
//   --worker-id N    pool slot index echoed in hello/heartbeats (default 0)
//   --heartbeat-ms N liveness interval while measuring; 0 = off
//                    (default 1000)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "distd/worker.h"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --connect unix:<path>|tcp:<ipv4>:<port> "
               "[--worker-id N] [--heartbeat-ms N]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  tvmbo::distd::WorkerConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--connect") config.endpoint = value();
    else if (flag == "--worker-id") config.worker_id = std::stoi(value());
    else if (flag == "--heartbeat-ms") {
      config.heartbeat_ms = std::stoi(value());
    } else {
      usage(argv[0]);
    }
  }
  if (config.endpoint.empty()) usage(argv[0]);
  return tvmbo::distd::serve_worker(config);
}
