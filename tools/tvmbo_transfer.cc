// tvmbo_transfer: train, evaluate, and query the cross-kernel transfer
// cost model (src/transfer/).
//
//   # Train a model from one or more perf databases and save it:
//   tvmbo_transfer train --db lu_db.jsonl --db chol_db.jsonl \
//       --out model.json
//
//   # Leave-one-kernel-out evaluation (does the model transfer?):
//   tvmbo_transfer eval --db merged_db.jsonl
//
//   # Rank configurations for a (possibly unseen) kernel:
//   tvmbo_transfer predict --model model.json --kernel gemm --size mini \
//       --topk 5
//
// Options:
//   --db FILE       perf database (repeatable; records merge in order)
//   --out FILE      where `train` saves the model
//   --model FILE    saved model for `predict`
//   --learner L     gbt | forest (default gbt)
//   --seed N        training / candidate-sampling seed (default 2023)
//   --kernel K      target kernel for `predict`
//   --size S        dataset name for `predict` (default mini)
//   --nthreads N    thread budget: != 1 ranks the parallel-knob space (1)
//   --topk N        candidates printed by `predict` (default 5)
//   --pool N        candidate pool the model ranks (default 256)
//
// Exit status: 0 on success, 1 when training/eval has too few usable
// samples, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.h"
#include "kernels/polybench.h"
#include "runtime/perf_db.h"
#include "transfer/cost_model.h"
#include "transfer/model_store.h"

using namespace tvmbo;

namespace {

struct Args {
  std::string command;
  std::vector<std::string> dbs;
  std::string out;
  std::string model;
  std::string learner = "gbt";
  std::uint64_t seed = 2023;
  std::string kernel;
  std::string size = "mini";
  std::int64_t nthreads = 1;
  std::size_t topk = 5;
  std::size_t pool = 256;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s train --db FILE [--db FILE ...] --out MODEL "
               "[--learner gbt|forest] [--seed N]\n"
               "       %s eval --db FILE [--db FILE ...] "
               "[--learner gbt|forest] [--seed N]\n"
               "       %s predict --model MODEL --kernel K [--size S] "
               "[--nthreads N] [--topk N] [--pool N] [--seed N]\n",
               argv0, argv0, argv0);
  std::exit(2);
}

Args parse(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--db") args.dbs.push_back(value());
    else if (flag == "--out") args.out = value();
    else if (flag == "--model") args.model = value();
    else if (flag == "--learner") args.learner = value();
    else if (flag == "--seed") args.seed = std::stoull(value());
    else if (flag == "--kernel") args.kernel = value();
    else if (flag == "--size") args.size = value();
    else if (flag == "--nthreads") args.nthreads = std::stoll(value());
    else if (flag == "--topk") args.topk = std::stoul(value());
    else if (flag == "--pool") args.pool = std::stoul(value());
    else usage(argv[0]);
  }
  return args;
}

/// Merges every --db into one model (unfitted).
transfer::CostModel load_samples(const Args& args) {
  transfer::CostModelOptions options;
  options.learner = args.learner;
  options.seed = args.seed;
  transfer::CostModel model(options);
  for (const std::string& path : args.dbs) {
    const runtime::PerfDatabase db = runtime::PerfDatabase::load(path);
    const std::size_t added = model.add_database(db);
    std::printf("%s: %zu of %zu record(s) featurized\n", path.c_str(),
                added, db.size());
  }
  return model;
}

int run_train(const Args& args) {
  if (args.dbs.empty() || args.out.empty()) return 2;
  transfer::CostModel model = load_samples(args);
  if (model.size() < 2) {
    std::fprintf(stderr, "error: %zu usable sample(s); need >= 2\n",
                 model.size());
    return 1;
  }
  model.fit();
  transfer::save_model(model, args.out);
  std::printf("trained %s model on %zu sample(s); saved %s\n",
              args.learner.c_str(), model.size(), args.out.c_str());
  return 0;
}

int run_eval(const Args& args) {
  if (args.dbs.empty()) return 2;
  const transfer::CostModel model = load_samples(args);
  const std::vector<transfer::LokoResult> results =
      transfer::leave_one_kernel_out(model.samples(), model.options());
  if (results.empty()) {
    std::fprintf(stderr,
                 "error: need samples from >= 2 kernels for "
                 "leave-one-kernel-out\n");
    return 1;
  }
  std::printf("%-10s %8s %8s %12s %12s\n", "kernel", "train", "test",
              "rank_corr", "top1_regret");
  for (const transfer::LokoResult& result : results) {
    std::printf("%-10s %8zu %8zu %12.4f %12.4f\n", result.kernel.c_str(),
                result.train_size, result.test_size,
                result.rank_correlation, result.top1_regret);
  }
  return 0;
}

int run_predict(const Args& args) {
  if (args.model.empty() || args.kernel.empty()) return 2;
  const transfer::CostModel model = transfer::load_model(args.model);
  if (!model.fitted()) {
    std::fprintf(stderr, "error: model %s has too few samples to rank\n",
                 args.model.c_str());
    return 1;
  }
  const kernels::Dataset dataset = kernels::dataset_from_name(args.size);
  const std::vector<std::int64_t> dims =
      kernels::polybench_dims(args.kernel, dataset);
  kernels::ScheduleKnobs knobs;
  knobs.enabled = args.nthreads != 1;
  knobs.max_threads = args.nthreads;
  const cs::ConfigurationSpace space =
      kernels::build_space(args.kernel, dims, knobs);
  const std::vector<transfer::RankedConfig> ranked = transfer::rank_configs(
      model, space, args.kernel, dims, args.topk, args.pool, args.seed);
  std::printf("%s %s: top %zu of a %zu-candidate pool\n",
              args.kernel.c_str(), args.size.c_str(), ranked.size(),
              args.pool);
  for (const transfer::RankedConfig& candidate : ranked) {
    std::string tiles = "[";
    for (std::size_t i = 0; i < candidate.tiles.size(); ++i) {
      if (i > 0) tiles += ",";
      tiles += std::to_string(candidate.tiles[i]);
    }
    tiles += "]";
    std::printf("  tiles=%-28s predicted %.6e s\n", tiles.c_str(),
                candidate.predicted_runtime_s);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  int status = 2;
  try {
    if (args.command == "train") status = run_train(args);
    else if (args.command == "eval") status = run_eval(args);
    else if (args.command == "predict") status = run_predict(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (status == 2) usage(argv[0]);
  return status;
}
