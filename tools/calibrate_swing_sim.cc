// Developer tool: scans the SwingSimDevice surface over each paper
// parameter space and prints the statistics needed to set the calibration
// scales in swing_sim.cc (surface minimum should equal the paper's best
// runtime). Exhaustive for LU/Cholesky (400/576 configs); random-sampled
// plus elite refinement for 3mm's 2.3e8-config space.
#include <cstdio>
#include <limits>

#include "common/rng.h"
#include "configspace/configspace.h"
#include "framework/figures.h"
#include "kernels/polybench.h"
#include "runtime/swing_sim.h"

using namespace tvmbo;

namespace {

void scan(const char* kernel, kernels::Dataset dataset,
          std::size_t samples) {
  const runtime::Workload workload = kernels::make_workload(kernel, dataset);
  const cs::ConfigurationSpace space =
      kernels::build_space(kernel, workload.dims);
  runtime::SwingSimDevice device;
  Rng rng(42);

  double best = std::numeric_limits<double>::infinity();
  double worst = 0.0;
  double sum = 0.0;
  std::vector<std::int64_t> best_tiles;
  std::size_t count = 0;

  auto consider = [&](const cs::Configuration& config) {
    const auto tiles = space.values_int(config);
    const double t = device.surface_runtime(workload, tiles);
    sum += t;
    ++count;
    if (t < best) {
      best = t;
      best_tiles = tiles;
    }
    worst = std::max(worst, t);
  };

  if (space.cardinality() <= 100000) {
    for (std::uint64_t flat = 0; flat < space.cardinality(); ++flat) {
      consider(space.from_flat_index(flat));
    }
  } else {
    for (std::size_t s = 0; s < samples; ++s) consider(space.sample(rng));
  }

  std::printf("%-10s %-11s | space %12llu | min %10.4f s @ %-24s | "
              "mean %10.3f | max %12.3f\n",
              kernel, kernels::dataset_name(dataset),
              static_cast<unsigned long long>(space.cardinality()), best,
              framework::tiles_to_string(best_tiles).c_str(), sum / count,
              worst);
}

}  // namespace

int main() {
  scan("lu", kernels::Dataset::kLarge, 0);
  scan("lu", kernels::Dataset::kExtraLarge, 0);
  scan("cholesky", kernels::Dataset::kLarge, 0);
  scan("cholesky", kernels::Dataset::kExtraLarge, 0);
  scan("3mm", kernels::Dataset::kLarge, 200000);
  scan("3mm", kernels::Dataset::kExtraLarge, 200000);
  scan("gemm", kernels::Dataset::kLarge, 0);
  scan("2mm", kernels::Dataset::kLarge, 100000);
  return 0;
}
