#include "common/logging.h"

#include <gtest/gtest.h>

namespace tvmbo {
namespace {

TEST(Logging, CheckPassesOnTrue) {
  EXPECT_NO_THROW(TVMBO_CHECK(true) << "never shown");
}

TEST(Logging, CheckThrowsWithMessage) {
  try {
    TVMBO_CHECK(1 == 2) << "context " << 42;
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
  }
}

TEST(Logging, ComparisonMacros) {
  EXPECT_NO_THROW(TVMBO_CHECK_EQ(3, 3));
  EXPECT_NO_THROW(TVMBO_CHECK_LT(1, 2));
  EXPECT_NO_THROW(TVMBO_CHECK_GE(2, 2));
  EXPECT_THROW(TVMBO_CHECK_EQ(1, 2), CheckError);
  EXPECT_THROW(TVMBO_CHECK_GT(1, 2), CheckError);
  EXPECT_THROW(TVMBO_CHECK_NE(5, 5), CheckError);
}

TEST(Logging, LogLevelRoundTrip) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Suppressed log must not throw or crash.
  TVMBO_LOG(Debug) << "suppressed";
  set_log_level(original);
}

TEST(Logging, CheckConditionNotDoubleEvaluated) {
  int evaluations = 0;
  auto condition = [&] {
    ++evaluations;
    return true;
  };
  TVMBO_CHECK(condition());
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace tvmbo
