#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace tvmbo {
namespace {

TEST(Csv, BasicSerialize) {
  CsvTable table({"a", "b"});
  table.add_row({"1", "2"});
  table.add_row({"x", "y"});
  EXPECT_EQ(table.to_string(), "a,b\n1,2\nx,y\n");
}

TEST(Csv, RowWidthMismatchThrows) {
  CsvTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), CheckError);
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvTable table({"v"});
  table.add_row({"with,comma"});
  table.add_row({"with\"quote"});
  table.add_row({"with\nnewline"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(text.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Csv, ParseRoundTripWithQuoting) {
  CsvTable table({"name", "value"});
  table.add_row({"plain", "1"});
  table.add_row({"tricky, \"stuff\"", "2\n3"});
  const CsvTable parsed = CsvTable::parse(table.to_string());
  ASSERT_EQ(parsed.num_rows(), 2u);
  EXPECT_EQ(parsed.cell(1, "name"), "tricky, \"stuff\"");
  EXPECT_EQ(parsed.cell(1, "value"), "2\n3");
}

TEST(Csv, ParseToleratesCrLf) {
  const CsvTable parsed = CsvTable::parse("a,b\r\n1,2\r\n");
  ASSERT_EQ(parsed.num_rows(), 1u);
  EXPECT_EQ(parsed.cell(0, "b"), "2");
}

TEST(Csv, CellByUnknownColumnThrows) {
  CsvTable table({"a"});
  table.add_row({"1"});
  EXPECT_THROW(table.cell(0, "nope"), CheckError);
  EXPECT_THROW(table.row(1), CheckError);
}

TEST(Csv, AddRowDoublesFormats) {
  CsvTable table({"x", "y"});
  table.add_row_doubles({1.5, 2.0}, 2);
  EXPECT_EQ(table.cell(0, "x"), "1.50");
  EXPECT_EQ(table.cell(0, "y"), "2.00");
}

TEST(Csv, WriteFileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tvmbo_csv_test.csv")
          .string();
  CsvTable table({"k", "v"});
  table.add_row({"lu", "1.659"});
  table.write_file(path);
  std::ifstream stream(path);
  std::stringstream buffer;
  buffer << stream.rdbuf();
  EXPECT_EQ(buffer.str(), table.to_string());
  std::remove(path.c_str());
}

TEST(Csv, EmptyHeaderThrows) {
  EXPECT_THROW(CsvTable(std::vector<std::string>{}), CheckError);
}

}  // namespace
}  // namespace tvmbo
