#include "common/json.h"

#include <gtest/gtest.h>

namespace tvmbo {
namespace {

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("3.25").as_double(), 3.25);
  EXPECT_EQ(Json::parse("-17").as_int(), -17);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParseScientificNotation) {
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(Json::parse("-2.5E-2").as_double(), -0.025);
}

TEST(Json, ParseNestedStructure) {
  const Json doc = Json::parse(
      R"({"config": [400, 50], "runtime": 1.659, "valid": true,
          "meta": {"kernel": "lu"}})");
  EXPECT_EQ(doc.at("config").at(0).as_int(), 400);
  EXPECT_EQ(doc.at("config").at(1).as_int(), 50);
  EXPECT_DOUBLE_EQ(doc.at("runtime").as_double(), 1.659);
  EXPECT_TRUE(doc.at("valid").as_bool());
  EXPECT_EQ(doc.at("meta").at("kernel").as_string(), "lu");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json obj = Json::object();
  obj.set("z", Json(1));
  obj.set("a", Json(2));
  EXPECT_EQ(obj.dump(), R"({"z":1,"a":2})");
}

TEST(Json, SetOverwritesExistingKey) {
  Json obj = Json::object();
  obj.set("k", Json(1));
  obj.set("k", Json(2));
  EXPECT_EQ(obj.size(), 1u);
  EXPECT_EQ(obj.at("k").as_int(), 2);
}

TEST(Json, RoundTripCompact) {
  const std::string text =
      R"({"a":[1,2.5,"x"],"b":{"c":null,"d":false},"e":"q\"uote"})";
  const Json doc = Json::parse(text);
  EXPECT_EQ(Json::parse(doc.dump()), doc);
}

TEST(Json, StringEscapes) {
  const Json doc = Json::parse(R"("line\nbreak\ttabA")");
  EXPECT_EQ(doc.as_string(), "line\nbreak\ttabA");
}

TEST(Json, DumpEscapesControlCharacters) {
  const Json doc(std::string("a\nb\"c"));
  EXPECT_EQ(doc.dump(), R"("a\nb\"c")");
}

TEST(Json, TrailingGarbageThrows) {
  EXPECT_THROW(Json::parse("1 2"), JsonParseError);
  EXPECT_THROW(Json::parse("{} x"), JsonParseError);
}

TEST(Json, MalformedInputThrows) {
  EXPECT_THROW(Json::parse("{"), JsonParseError);
  EXPECT_THROW(Json::parse("[1,]"), JsonParseError);
  EXPECT_THROW(Json::parse("tru"), JsonParseError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonParseError);
  EXPECT_THROW(Json::parse(""), JsonParseError);
}

TEST(Json, TypeMismatchChecks) {
  const Json doc = Json::parse("[1]");
  EXPECT_THROW(doc.as_object(), CheckError);
  EXPECT_THROW(doc.at("k"), CheckError);
  EXPECT_THROW(doc.at(5), CheckError);
}

TEST(Json, ContainsOnlyTrueForPresentKeys) {
  const Json doc = Json::parse(R"({"a":1})");
  EXPECT_TRUE(doc.contains("a"));
  EXPECT_FALSE(doc.contains("b"));
  EXPECT_FALSE(Json(1).contains("a"));
}

TEST(Json, ParseLinesSkipsBlanks) {
  const auto records = Json::parse_lines("{\"i\":0}\n\n{\"i\":1}\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].at("i").as_int(), 0);
  EXPECT_EQ(records[1].at("i").as_int(), 1);
}

TEST(Json, PrettyPrintIsReparseable) {
  const Json doc = Json::parse(R"({"a":[1,2],"b":{"c":3}})");
  const std::string pretty = doc.dump_pretty();
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(Json::parse(pretty), doc);
}

TEST(Json, IntegersPrintWithoutDecimalPoint) {
  EXPECT_EQ(Json(42.0).dump(), "42");
  EXPECT_EQ(Json(-3).dump(), "-3");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
}

TEST(Json, ArrayPushBack) {
  Json arr = Json::array();
  arr.push_back(Json(1));
  arr.push_back(Json("two"));
  EXPECT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr.dump(), R"([1,"two"])");
}

}  // namespace
}  // namespace tvmbo
