#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "configspace/divisors.h"
#include "surrogate/gbt.h"
#include "surrogate/random_forest.h"

namespace tvmbo::surrogate {
namespace {

// A deterministic nonlinear regression problem: y = (x0-0.5)^2 + 0.3*x1.
Dataset quadratic_dataset(std::size_t n, Rng& rng) {
  Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform();
    const double x1 = rng.uniform();
    data.add({x0, x1}, (x0 - 0.5) * (x0 - 0.5) + 0.3 * x1);
  }
  return data;
}

TEST(Dataset, AddChecksArity) {
  Dataset data;
  data.add({1.0, 2.0}, 3.0);
  EXPECT_THROW(data.add({1.0}, 2.0), CheckError);
  EXPECT_EQ(data.size(), 1u);
  EXPECT_EQ(data.num_features(), 2u);
}

TEST(DecisionTree, FitsConstantTarget) {
  Dataset data;
  for (int i = 0; i < 10; ++i) data.add({static_cast<double>(i)}, 4.0);
  DecisionTree tree;
  tree.fit(data);
  EXPECT_EQ(tree.num_leaves(), 1u);  // zero variance -> single leaf
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{3.0}), 4.0);
}

TEST(DecisionTree, LearnsStepFunctionExactly) {
  Dataset data;
  for (int i = 0; i < 20; ++i) {
    data.add({static_cast<double>(i)}, i < 10 ? 1.0 : 5.0);
  }
  DecisionTree tree;
  tree.fit(data);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{2.0}), 1.0);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{15.0}), 5.0);
  EXPECT_EQ(tree.num_leaves(), 2u);
}

TEST(DecisionTree, InterpolatesTraining) {
  Rng rng(1);
  const Dataset data = quadratic_dataset(200, rng);
  DecisionTree tree(TreeOptions{.max_depth = 20, .min_samples_leaf = 1});
  tree.fit(data);
  for (std::size_t i = 0; i < data.size(); i += 10) {
    EXPECT_NEAR(tree.predict(data.x[i]), data.y[i], 1e-9);
  }
}

TEST(DecisionTree, DepthLimitRespected) {
  Rng rng(2);
  const Dataset data = quadratic_dataset(300, rng);
  DecisionTree tree(TreeOptions{.max_depth = 3});
  tree.fit(data);
  EXPECT_LE(tree.depth(), 4u);  // root + 3 levels
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  Rng rng(3);
  const Dataset data = quadratic_dataset(64, rng);
  DecisionTree tree(TreeOptions{.min_samples_leaf = 8});
  tree.fit(data);
  // With >= 8 samples per leaf, at most 64/8 leaves.
  EXPECT_LE(tree.num_leaves(), 8u);
}

TEST(DecisionTree, PredictBeforeFitThrows) {
  DecisionTree tree;
  EXPECT_THROW(tree.predict(std::vector<double>{1.0}), CheckError);
}

TEST(DecisionTree, RandomFeatureSubsettingRequiresRng) {
  Dataset data;
  data.add({1.0}, 1.0);
  data.add({2.0}, 2.0);
  DecisionTree tree(TreeOptions{.max_features = 1});
  EXPECT_THROW(tree.fit(data), CheckError);
}

TEST(RandomForest, BetterThanSingleNoisyTreeOnHoldout) {
  Rng rng(7);
  Dataset train = quadratic_dataset(300, rng);
  const Dataset test = quadratic_dataset(100, rng);
  // Add label noise to the training set.
  Rng noise(8);
  for (double& y : train.y) y += noise.normal(0.0, 0.05);

  RandomForest forest(ForestOptions{.num_trees = 60});
  Rng fit_rng(9);
  forest.fit(train, fit_rng);

  std::vector<double> predictions;
  for (const auto& x : test.x) predictions.push_back(forest.predict(x));
  EXPECT_GT(r_squared(predictions, test.y), 0.8);
}

TEST(RandomForest, PredictionStdPositiveOffData) {
  Rng rng(11);
  const Dataset data = quadratic_dataset(50, rng);
  RandomForest forest(ForestOptions{.num_trees = 40});
  Rng fit_rng(12);
  forest.fit(data, fit_rng);
  // Uncertainty must be strictly positive somewhere (trees disagree).
  double max_std = 0.0;
  for (int i = 0; i < 20; ++i) {
    const auto pred =
        forest.predict_with_std(std::vector<double>{rng.uniform(),
                                                    rng.uniform()});
    max_std = std::max(max_std, pred.std);
    EXPECT_GE(pred.std, 0.0);
  }
  EXPECT_GT(max_std, 0.0);
}

TEST(RandomForest, DeterministicGivenSeed) {
  Rng rng(13);
  const Dataset data = quadratic_dataset(80, rng);
  RandomForest a(ForestOptions{.num_trees = 10});
  RandomForest b(ForestOptions{.num_trees = 10});
  Rng ra(99), rb(99);
  a.fit(data, ra);
  b.fit(data, rb);
  const std::vector<double> x{0.3, 0.7};
  EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
}

TEST(RandomForest, FitEmptyThrows) {
  RandomForest forest;
  Rng rng(1);
  EXPECT_THROW(forest.fit(Dataset{}, rng), CheckError);
}

TEST(Gbt, FitsQuadraticWellInSample) {
  Rng rng(17);
  const Dataset data = quadratic_dataset(300, rng);
  GradientBoostedTrees gbt;
  Rng fit_rng(18);
  gbt.fit(data, fit_rng);
  EXPECT_LT(gbt.training_rmse(), 0.02);
}

TEST(Gbt, GeneralizesOnHoldout) {
  Rng rng(19);
  const Dataset train = quadratic_dataset(400, rng);
  const Dataset test = quadratic_dataset(100, rng);
  GradientBoostedTrees gbt;
  Rng fit_rng(20);
  gbt.fit(train, fit_rng);
  std::vector<double> predictions;
  for (const auto& x : test.x) predictions.push_back(gbt.predict(x));
  EXPECT_GT(r_squared(predictions, test.y), 0.9);
}

TEST(Gbt, RanksConfigurationsUsefully) {
  // The XGBTuner only needs ranking quality; check Spearman correlation.
  Rng rng(21);
  const Dataset train = quadratic_dataset(200, rng);
  const Dataset test = quadratic_dataset(60, rng);
  GradientBoostedTrees gbt;
  Rng fit_rng(22);
  gbt.fit(train, fit_rng);
  std::vector<double> predictions;
  for (const auto& x : test.x) predictions.push_back(gbt.predict(x));
  EXPECT_GT(spearman(predictions, test.y), 0.9);
}

TEST(Gbt, EarlyStopReducesRounds) {
  Rng rng(23);
  Dataset data;
  for (int i = 0; i < 50; ++i) {
    data.add({static_cast<double>(i)}, i < 25 ? 0.0 : 1.0);  // trivial
  }
  GbtOptions options;
  options.num_rounds = 100;
  options.subsample = 1.0;
  options.early_stop_tolerance = 1e-6;
  GradientBoostedTrees gbt(options);
  Rng fit_rng(24);
  gbt.fit(data, fit_rng);
  EXPECT_LT(gbt.num_rounds_used(), 100u);
}

TEST(Gbt, PredictBeforeFitThrows) {
  GradientBoostedTrees gbt;
  EXPECT_THROW(gbt.predict(std::vector<double>{0.0}), CheckError);
}

TEST(Gbt, InvalidOptionsThrow) {
  GbtOptions bad;
  bad.learning_rate = 0.0;
  EXPECT_THROW(GradientBoostedTrees{bad}, CheckError);
  GbtOptions bad2;
  bad2.subsample = 1.5;
  EXPECT_THROW(GradientBoostedTrees{bad2}, CheckError);
}

TEST(FeatureEncoder, EncodesPositionAndMagnitude) {
  cs::ConfigurationSpace space;
  space.add(cs::tile_factor_param("P0", 2000));
  space.add(cs::tile_factor_param("P1", 2000));
  FeatureEncoder encoder(&space);
  EXPECT_EQ(encoder.num_features(), 4u);
  cs::Configuration config = space.default_configuration();
  config.set_index(0, 0);   // tile 1
  config.set_index(1, 19);  // tile 2000
  const auto features = encoder.encode(config);
  EXPECT_DOUBLE_EQ(features[0], 0.0);
  EXPECT_NEAR(features[1], std::log2(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(features[2], 1.0);
  EXPECT_NEAR(features[3], std::log2(2001.0), 1e-12);
}

}  // namespace
}  // namespace tvmbo::surrogate
