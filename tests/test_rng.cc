#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace tvmbo {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInRangeAndCoversAllValues) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(7);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntTwoSidedInclusive) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.contains(-2));
  EXPECT_TRUE(seen.contains(2));
}

TEST(Rng, UniformIntRejectsNonPositiveBound) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(0), CheckError);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Rng rng(23);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  const auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t index : sample) EXPECT_LT(index, 100u);
}

TEST(Rng, SampleWholeRangeIsPermutation) {
  Rng rng(37);
  const auto sample = rng.sample_without_replacement(16, 16);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 16u);
}

TEST(Rng, SampleTooManyThrows) {
  Rng rng(41);
  EXPECT_THROW(rng.sample_without_replacement(4, 5), CheckError);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(43);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, Hash64IsDeterministicAndMixing) {
  EXPECT_EQ(hash64(42), hash64(42));
  EXPECT_NE(hash64(42), hash64(43));
  // Low bits of input should affect high bits of output.
  const std::uint64_t a = hash64(0);
  const std::uint64_t b = hash64(1);
  EXPECT_NE(a >> 32, b >> 32);
}

TEST(Rng, HashCombineOrderMatters) {
  const std::uint64_t ab = hash_combine(hash64(1), 2);
  const std::uint64_t ba = hash_combine(hash64(2), 1);
  EXPECT_NE(ab, ba);
}

}  // namespace
}  // namespace tvmbo
