#include "framework/analysis.h"

#include <gtest/gtest.h>

#include "kernels/polybench.h"
#include "runtime/swing_sim.h"

namespace tvmbo::framework {
namespace {

SessionResult synthetic_result() {
  SessionResult result;
  result.strategy = "demo";
  result.evaluations = 5;
  result.total_time_s = 50.0;
  const double runtimes[5] = {4.0, 3.0, 10.0, 2.0, 2.05};
  for (int i = 0; i < 5; ++i) {
    runtime::TrialRecord record;
    record.eval_index = i;
    record.strategy = "demo";
    record.workload_id = "lu/large[2000]";
    record.tiles = {400, 50};
    record.runtime_s = runtimes[i];
    record.elapsed_s = 10.0 * (i + 1);
    record.valid = i != 2 ? true : true;  // all valid here
    result.db.add(record);
  }
  result.best = result.db.best();
  return result;
}

TEST(Analysis, SummaryStatistics) {
  const StrategySummary s = summarize(synthetic_result());
  EXPECT_EQ(s.strategy, "demo");
  EXPECT_EQ(s.evaluations, 5u);
  EXPECT_EQ(s.valid_evaluations, 5u);
  EXPECT_DOUBLE_EQ(s.best_runtime_s, 2.0);
  EXPECT_DOUBLE_EQ(s.worst_runtime_s, 10.0);
  EXPECT_DOUBLE_EQ(s.median_runtime_s, 3.0);
  // Within 5% of the final best (2.1): first reached at evaluation 4.
  EXPECT_EQ(s.evals_to_within_5pct, 4);
  EXPECT_DOUBLE_EQ(s.time_to_best_s, 40.0);
}

TEST(Analysis, SummaryOfEmptyResult) {
  SessionResult empty;
  empty.strategy = "none";
  const StrategySummary s = summarize(empty);
  EXPECT_EQ(s.valid_evaluations, 0u);
  EXPECT_EQ(s.evals_to_within_5pct, -1);
}

TEST(Analysis, SummaryIgnoresInvalidTrials) {
  SessionResult result = synthetic_result();
  runtime::TrialRecord bogus;
  bogus.eval_index = 5;
  bogus.strategy = "demo";
  bogus.workload_id = "lu/large[2000]";
  bogus.tiles = {1, 1};
  bogus.runtime_s = 0.001;  // would be "best" if not invalid
  bogus.valid = false;
  result.db.add(bogus);
  const StrategySummary s = summarize(result);
  EXPECT_DOUBLE_EQ(s.best_runtime_s, 2.0);
  EXPECT_EQ(s.valid_evaluations, 5u);
}

TEST(Analysis, EvaluationsToReach) {
  const SessionResult result = synthetic_result();
  EXPECT_EQ(evaluations_to_reach(result, 3.5), 2);
  EXPECT_EQ(evaluations_to_reach(result, 2.0), 4);
  EXPECT_EQ(evaluations_to_reach(result, 0.5), -1);
}

TEST(Analysis, SummaryTableHasOneRowPerStrategy) {
  std::vector<SessionResult> results{synthetic_result(),
                                     synthetic_result()};
  results[1].strategy = "other";
  const CsvTable table = summary_table(results);
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.cell(1, "strategy"), "other");
  EXPECT_EQ(table.cell(0, "best_s").substr(0, 6), "2.0000");
}

TEST(Analysis, AsciiScatterContainsLegendAndAxes) {
  const std::vector<SessionResult> results{synthetic_result()};
  const std::string plot = ascii_scatter(results);
  EXPECT_NE(plot.find("legend: g=demo"), std::string::npos);
  EXPECT_NE(plot.find("autotuning process time"), std::string::npos);
  EXPECT_NE(plot.find("log scale"), std::string::npos);
  // At least one data glyph landed on the canvas.
  EXPECT_NE(plot.find('g'), std::string::npos);
}

TEST(Analysis, AsciiScatterEmptyInput) {
  SessionResult empty;
  empty.strategy = "none";
  const std::string plot = ascii_scatter({empty});
  EXPECT_NE(plot.find("no valid evaluations"), std::string::npos);
}

TEST(Analysis, AsciiScatterTooSmallCanvasThrows) {
  const std::vector<SessionResult> results{synthetic_result()};
  EXPECT_THROW(ascii_scatter(results, 5, 2), CheckError);
}

TEST(Analysis, EndToEndSummaryOrderingMatchesPaperShape) {
  // On the real experiment, the summary's evals_to_5pct for ytopt must be
  // well below the 100-eval budget (it converges), and grid search's best
  // must be the worst of the five.
  const autotvm::Task task =
      kernels::make_task("lu", kernels::Dataset::kLarge);
  runtime::SwingSimDevice device(2023);
  SessionOptions options;
  options.max_evaluations = 100;
  options.xgb_paper_eval_cap = 56;
  AutotuningSession session(&task, &device, options);
  const auto results = session.run_all();

  double grid_best = 0.0;
  std::vector<double> others;
  for (const auto& result : results) {
    const StrategySummary s = summarize(result);
    EXPECT_GT(s.evals_to_within_5pct, 0) << result.strategy;
    if (result.strategy == "autotvm-gridsearch") {
      grid_best = s.best_runtime_s;
    } else {
      others.push_back(s.best_runtime_s);
    }
  }
  int beaten = 0;
  for (double other : others) {
    if (other <= grid_best) ++beaten;
  }
  EXPECT_GE(beaten, 3);
}

}  // namespace
}  // namespace tvmbo::framework
