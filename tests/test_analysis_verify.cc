// Adversarial suite for the loop-IR static analysis subsystem
// (src/analysis/): each structural rule is violated on purpose and must
// come back with its exact rule id; the race prover must admit every
// shipped parallel kernel schedule and reject hand-built racy loops; the
// bounds prover must use guard constraints; the config pre-screener must
// reject armed fault configs without spending a device; and a fuzz round
// checks analyzer-accepted random configs agree bit-for-bit across the
// execution tiers.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/config_screen.h"
#include "analysis/dependence.h"
#include "analysis/verify.h"
#include "codegen/jit_program.h"
#include "common/logging.h"
#include "common/rng.h"
#include "distd/fault_kernels.h"
#include "framework/session.h"
#include "kernels/polybench.h"
#include "kernels/te_programs.h"
#include "runtime/cpu_device.h"
#include "runtime/measure_runner.h"
#include "runtime/trace_log.h"
#include "te/expr.h"
#include "te/ir.h"
#include "te/loop_transform.h"
#include "te/lower.h"
#include "te/schedule.h"
#include "te/tensor.h"

namespace tvmbo {
namespace {

using analysis::Violation;

bool has_rule(const std::vector<Violation>& violations,
              const std::string& rule) {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const Violation& v) { return v.rule == rule; });
}

std::string rules_of(const std::vector<Violation>& violations) {
  std::string out;
  for (const Violation& v : violations) {
    if (!out.empty()) out += ", ";
    out += v.rule;
  }
  return out;
}

// --- structural verifier, one deliberate violation per rule ------------------

TEST(AnalysisVerify, UnboundIndexVarIsFlagged) {
  te::Tensor a = te::placeholder({4}, "A");
  te::Var i = te::make_var("i");
  // No loop binds i: the store's index var is free.
  const te::Stmt program =
      te::make_store(a, {te::Expr(i)}, te::make_float(1.0));
  const auto violations = analysis::verify_stmt(program, {a});
  EXPECT_TRUE(has_rule(violations, "unbound-var")) << rules_of(violations);
}

TEST(AnalysisVerify, NonpositiveExtentIsFlagged) {
  te::Tensor a = te::placeholder({4}, "A");
  te::Var i = te::make_var("i");
  // make_for refuses extent <= 0, so build the node directly — exactly the
  // malformed IR the verifier exists to catch.
  const te::Stmt store =
      te::make_store(a, {te::Expr(i)}, te::make_float(1.0));
  const te::Stmt program =
      std::make_shared<te::ForNode>(i, 0, te::ForKind::kSerial, store);
  const auto violations = analysis::verify_stmt(program, {a});
  EXPECT_TRUE(has_rule(violations, "nonpositive-extent"))
      << rules_of(violations);
}

TEST(AnalysisVerify, DuplicateLoopVarIsFlagged) {
  te::Tensor a = te::placeholder({4}, "A");
  te::Var i = te::make_var("i");
  const te::Stmt store =
      te::make_store(a, {te::Expr(i)}, te::make_float(1.0));
  const te::Stmt inner = te::make_for(i, 4, te::ForKind::kSerial, store);
  const te::Stmt program = te::make_for(i, 4, te::ForKind::kSerial, inner);
  const auto violations = analysis::verify_stmt(program, {a});
  EXPECT_TRUE(has_rule(violations, "duplicate-loop-var"))
      << rules_of(violations);
}

TEST(AnalysisVerify, RealizeAfterFirstUseIsFlagged) {
  // B is stored before its Realize region opens: the first store is an
  // unrealized access even though a Realize exists later in the sequence.
  te::Tensor a = te::placeholder({4}, "A");
  te::Tensor b = te::placeholder({4}, "B");
  const te::Stmt early =
      te::make_store(b, {te::make_int(0)}, te::make_float(1.0));
  const te::Stmt inside =
      te::make_store(b, {te::make_int(1)}, te::make_float(2.0));
  const te::Stmt program =
      te::make_seq({early, te::make_realize(b, inside)});
  const auto violations = analysis::verify_stmt(program, {a});
  EXPECT_TRUE(has_rule(violations, "unrealized-access"))
      << rules_of(violations);
}

TEST(AnalysisVerify, AccessArityMismatchIsFlagged) {
  te::Tensor a = te::placeholder({4, 4}, "A");
  te::Var i = te::make_var("i");
  // make_store refuses rank mismatches, so build the node directly.
  const te::Stmt store = std::make_shared<te::StoreNode>(
      a, std::vector<te::Expr>{te::Expr(i)}, te::make_float(1.0));
  const te::Stmt program = te::make_for(i, 4, te::ForKind::kSerial, store);
  const auto violations = analysis::verify_stmt(program, {a});
  EXPECT_TRUE(has_rule(violations, "access-arity")) << rules_of(violations);
}

TEST(AnalysisVerify, ReductionUpdateToOtherElementIsFlagged) {
  // C[i] combines a read of C[i+1] — a reduction update must RMW the same
  // element. The read itself stays in bounds (C has 9 elements) so only
  // the RMW rule fires.
  te::Tensor c = te::placeholder({9}, "C");
  te::Var i = te::make_var("i");
  const te::Expr shifted = te::access(c, {te::Expr(i) + te::make_int(1)});
  const te::Stmt store =
      te::make_store(c, {te::Expr(i)}, shifted + te::make_float(1.0));
  const te::Stmt program = te::make_for(i, 8, te::ForKind::kSerial, store);
  const auto violations = analysis::verify_stmt(program, {c});
  EXPECT_TRUE(has_rule(violations, "reduce-rmw-mismatch"))
      << rules_of(violations);
  EXPECT_FALSE(has_rule(violations, "out-of-bounds-access"))
      << rules_of(violations);
}

TEST(AnalysisVerify, OutOfBoundsAffineStoreIsFlagged) {
  te::Tensor a = te::placeholder({4}, "A");
  te::Var i = te::make_var("i");
  const te::Stmt store =
      te::make_store(a, {te::Expr(i)}, te::make_float(1.0));
  const te::Stmt program = te::make_for(i, 8, te::ForKind::kSerial, store);
  const auto violations = analysis::verify_stmt(program, {a});
  EXPECT_TRUE(has_rule(violations, "out-of-bounds-access"))
      << rules_of(violations);
}

TEST(AnalysisVerify, ParallelRacyLoopSurfacesInVerifyReport) {
  // The verifier's report includes the race prover's verdict under the
  // parallel-loop-race rule (A[i] = A[i+1] carries a dependence).
  te::Tensor a = te::placeholder({9}, "A");
  te::Var i = te::make_var("i");
  const te::Expr next = te::access(a, {te::Expr(i) + te::make_int(1)});
  const te::Stmt store = te::make_store(a, {te::Expr(i)}, next);
  const te::Stmt program = te::make_for(i, 8, te::ForKind::kParallel, store);
  const auto violations = analysis::verify_stmt(program, {a});
  EXPECT_TRUE(has_rule(violations, "parallel-loop-race"))
      << rules_of(violations);
}

TEST(AnalysisVerify, WellFormedNestIsClean) {
  te::Tensor a = te::placeholder({4, 6}, "A");
  te::Var i = te::make_var("i");
  te::Var j = te::make_var("j");
  const te::Stmt store =
      te::make_store(a, {te::Expr(i), te::Expr(j)}, te::make_float(0.0));
  const te::Stmt program = te::make_for(
      i, 4, te::ForKind::kSerial, te::make_for(j, 6, te::ForKind::kSerial,
                                               store));
  const auto violations = analysis::verify_stmt(program, {a});
  EXPECT_TRUE(violations.empty()) << rules_of(violations);
}

// --- bounds prover: guards and index arithmetic ------------------------------

TEST(AnalysisBounds, GuardConditionTightensIndexRange) {
  // i ranges over 8 but the store is guarded to i < 4: provably in bounds.
  te::Tensor a = te::placeholder({4}, "A");
  te::Var i = te::make_var("i");
  const te::Stmt store =
      te::make_store(a, {te::Expr(i)}, te::make_float(1.0));
  const te::Stmt guarded =
      te::make_if(te::lt(te::Expr(i), te::make_int(4)), store);
  const te::Stmt program = te::make_for(i, 8, te::ForKind::kSerial, guarded);
  const auto violations = analysis::verify_stmt(program, {a});
  EXPECT_TRUE(violations.empty()) << rules_of(violations);
}

TEST(AnalysisBounds, ModAndFloorDivIndicesAreProven) {
  te::Tensor a = te::placeholder({4}, "A");
  te::Tensor b = te::placeholder({4}, "B");
  te::Var i = te::make_var("i");
  const te::Stmt stores = te::make_seq({
      te::make_store(a, {te::floor_mod(te::Expr(i), te::make_int(4))},
                     te::make_float(1.0)),
      te::make_store(b, {te::floor_div(te::Expr(i), te::make_int(4))},
                     te::make_float(2.0)),
  });
  const te::Stmt program = te::make_for(i, 16, te::ForKind::kSerial, stores);
  const auto violations = analysis::verify_stmt(program, {a, b});
  EXPECT_TRUE(violations.empty()) << rules_of(violations);
}

TEST(AnalysisBounds, TriangularGuardKeepsReadInBounds) {
  // A[i][j] reads A[j][i] under a j <= i guard — both indices stay inside
  // the square, and the guard constraints must flow into the range proof.
  te::Tensor a = te::placeholder({6, 6}, "A");
  te::Var i = te::make_var("i");
  te::Var j = te::make_var("j");
  const te::Expr mirrored = te::access(a, {te::Expr(j), te::Expr(i)});
  const te::Stmt store =
      te::make_store(a, {te::Expr(i), te::Expr(j)},
                     te::access(a, {te::Expr(i), te::Expr(j)}) + mirrored);
  const te::Stmt guarded =
      te::make_if(te::le(te::Expr(j), te::Expr(i)), store);
  const te::Stmt program = te::make_for(
      i, 6, te::ForKind::kSerial,
      te::make_for(j, 6, te::ForKind::kSerial, guarded));
  const auto violations = analysis::verify_stmt(program, {a});
  EXPECT_TRUE(violations.empty()) << rules_of(violations);
}

// --- race prover -------------------------------------------------------------

TEST(AnalysisRace, LoopCarriedDependenceIsRejected) {
  te::Tensor a = te::placeholder({9}, "A");
  te::Var i = te::make_var("i");
  const te::Expr next = te::access(a, {te::Expr(i) + te::make_int(1)});
  const te::Stmt store = te::make_store(a, {te::Expr(i)}, next);
  const te::Stmt program = te::make_for(i, 8, te::ForKind::kParallel, store);
  const auto proofs = analysis::analyze_parallel_loops(program);
  ASSERT_EQ(proofs.size(), 1u);
  EXPECT_FALSE(proofs[0].proven) << proofs[0].detail;
}

TEST(AnalysisRace, DisjointWritesAreProven) {
  te::Tensor a = te::placeholder({8}, "A");
  te::Var i = te::make_var("i");
  const te::Stmt store =
      te::make_store(a, {te::Expr(i)}, te::make_float(1.0));
  const te::Stmt program = te::make_for(i, 8, te::ForKind::kParallel, store);
  const auto proofs = analysis::analyze_parallel_loops(program);
  ASSERT_EQ(proofs.size(), 1u);
  EXPECT_TRUE(proofs[0].proven) << proofs[0].detail;
}

TEST(AnalysisRace, UnrolledLoopNeedsNoProof) {
  // The same loop-carried dependence under kUnrolled is legal: unrolling
  // preserves sequential order, so no proof obligation exists.
  te::Tensor a = te::placeholder({9}, "A");
  te::Var i = te::make_var("i");
  const te::Expr next = te::access(a, {te::Expr(i) + te::make_int(1)});
  const te::Stmt store = te::make_store(a, {te::Expr(i)}, next);
  const te::Stmt program = te::make_for(i, 8, te::ForKind::kUnrolled, store);
  EXPECT_TRUE(analysis::analyze_parallel_loops(program).empty());
  EXPECT_FALSE(analysis::kind_requires_race_proof(te::ForKind::kUnrolled));
  EXPECT_FALSE(analysis::kind_requires_race_proof(te::ForKind::kSerial));
  EXPECT_TRUE(analysis::kind_requires_race_proof(te::ForKind::kParallel));
  EXPECT_TRUE(analysis::kind_requires_race_proof(te::ForKind::kVectorized));
}

TEST(AnalysisRace, RealizeInsideParallelLoopIsRejected) {
  // The closure tier shares one realize buffer across iterations, so a
  // Realize nested in a concurrent loop is racy regardless of indices.
  te::Tensor a = te::placeholder({8}, "A");
  te::Tensor t = te::placeholder({1}, "T");
  te::Var i = te::make_var("i");
  const te::Stmt body = te::make_realize(
      t, te::make_seq({
             te::make_store(t, {te::make_int(0)}, te::make_float(1.0)),
             te::make_store(a, {te::Expr(i)},
                            te::access(t, {te::make_int(0)})),
         }));
  const te::Stmt program = te::make_for(i, 8, te::ForKind::kParallel, body);
  const auto proofs = analysis::analyze_parallel_loops(program);
  ASSERT_EQ(proofs.size(), 1u);
  EXPECT_FALSE(proofs[0].proven);
  EXPECT_NE(proofs[0].detail.find("realized inside"), std::string::npos)
      << proofs[0].detail;
}

// --- vectorize + pack adversarial cases --------------------------------------

TEST(AnalysisRace, VectorizedLoopCarriedReductionIsRejected) {
  // A kVectorized loop carrying a reduction (c[0] += a[k]) races on the
  // accumulator: every lane writes the same element. The prover must say
  // no, and the verify report must file it under parallel-loop-race.
  te::Tensor a = te::placeholder({8}, "A");
  te::Tensor c = te::placeholder({1}, "C");
  te::Var k = te::make_var("k");
  const te::Stmt store = te::make_store(
      c, {te::make_int(0)},
      te::access(c, {te::make_int(0)}) + te::access(a, {te::Expr(k)}));
  const te::Stmt program =
      te::make_for(k, 8, te::ForKind::kVectorized, store);
  const auto proofs = analysis::analyze_parallel_loops(program);
  ASSERT_EQ(proofs.size(), 1u);
  EXPECT_FALSE(proofs[0].proven) << proofs[0].detail;
  const auto violations = analysis::verify_stmt(program, {a, c});
  EXPECT_TRUE(has_rule(violations, "parallel-loop-race"))
      << rules_of(violations);
}

TEST(AnalysisRace, ScheduleVectorizingReductionAxisFailsToLower) {
  // The relaxed Stage::vectorize accepts any leaf — including the k
  // reduction axis — because the machine-checked race proof at lowering
  // is the real gate. Lowering such a schedule must throw with the
  // parallel-loop-race rule id, never silently emit a racy nest.
  te::Tensor a = te::placeholder({4, 6}, "A");
  te::Tensor b = te::placeholder({6, 4}, "B");
  te::IterVar kk = te::reduce_axis(6, "k");
  te::Tensor c = te::compute(
      {4, 4}, "C",
      [&](const std::vector<te::Var>& i) {
        return te::sum(te::access(a, {i[0], kk->var}) *
                           te::access(b, {kk->var, i[1]}),
                       {kk->var});
      },
      {kk});
  te::Schedule sched({c});
  sched[c].vectorize(sched[c].op_reduce_axis()[0]);
  try {
    te::lower(sched);
    FAIL() << "lowering a vectorized reduction axis must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("parallel-loop-race"),
              std::string::npos)
        << e.what();
  }
}

TEST(AnalysisRace, PackAliasingTheWrittenWindowIsRejected) {
  // Packing reads of a tensor that is also written inside the packed
  // window would let redirected reads observe a stale copy. pack_reads
  // must refuse with the pack-aliases-write rule id.
  te::Tensor b = te::placeholder({8, 8}, "B");
  te::Var i = te::make_var("i");
  te::Var j = te::make_var("j");
  const te::Stmt store = te::make_store(
      b, {te::Expr(i), te::Expr(j)},
      te::access(b, {te::Expr(i), te::Expr(j)}) * te::make_float(2.0));
  const te::Stmt program = te::make_for(
      i, 8, te::ForKind::kSerial,
      te::make_for(j, 8, te::ForKind::kSerial, store));
  try {
    te::pack_reads(program, b, i, /*wrap_outside=*/false, /*perm=*/{0, 1},
                   /*invariant_dims=*/{}, "b_pack");
    FAIL() << "packing an aliased window must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("pack-aliases-write"),
              std::string::npos)
        << e.what();
  }
}

TEST(AnalysisRace, PackOfUnreadTensorIsRejected) {
  // Asking to pack a tensor the region never reads is a schedule bug;
  // pack_reads must refuse with the pack-no-reads rule id instead of
  // materializing a dead scratch buffer.
  te::Tensor a = te::placeholder({8}, "A");
  te::Tensor c = te::placeholder({8}, "C");
  te::Var i = te::make_var("i");
  const te::Stmt store =
      te::make_store(c, {te::Expr(i)}, te::make_float(1.0));
  const te::Stmt program = te::make_for(i, 8, te::ForKind::kSerial, store);
  try {
    te::pack_reads(program, a, i, /*wrap_outside=*/false, /*perm=*/{0},
                   /*invariant_dims=*/{}, "a_pack");
    FAIL() << "packing an unread tensor must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("pack-no-reads"),
              std::string::npos)
        << e.what();
  }
}

TEST(AnalysisRace, SingleIterationLoopIsTriviallyProven) {
  te::Tensor a = te::placeholder({9}, "A");
  te::Var i = te::make_var("i");
  const te::Expr next = te::access(a, {te::Expr(i) + te::make_int(1)});
  const te::Stmt store = te::make_store(a, {te::Expr(i)}, next);
  const te::Stmt program = te::make_for(i, 1, te::ForKind::kParallel, store);
  const auto proofs = analysis::analyze_parallel_loops(program);
  ASSERT_EQ(proofs.size(), 1u);
  EXPECT_TRUE(proofs[0].proven) << proofs[0].detail;
}

// --- shipped kernel schedules: every parallel axis must be provable ----------

std::vector<std::string> te_kernels() {
  return {"3mm", "gemm", "2mm", "syrk", "lu", "cholesky"};
}

std::vector<std::int64_t> default_base_tiles(const std::string& kernel,
                                             const std::vector<std::int64_t>&
                                                 dims) {
  const cs::ConfigurationSpace space = kernels::build_space(kernel, dims);
  return space.values_int(space.default_configuration());
}

TEST(AnalysisRace, AllShippedParallelSchedulesAreProven) {
  for (const std::string& kernel : te_kernels()) {
    const std::vector<std::int64_t> dims =
        kernels::polybench_dims(kernel, kernels::Dataset::kMini);
    const auto data = kernels::make_te_kernel_data(kernel, dims);
    const std::size_t axes = kernels::te_num_parallel_axes(kernel);
    ASSERT_GE(axes, 1u) << kernel;
    for (std::size_t axis = 1; axis <= axes; ++axis) {
      std::vector<std::int64_t> tiles = default_base_tiles(kernel, dims);
      tiles.push_back(static_cast<std::int64_t>(axis));
      tiles.push_back(4);  // thread budget; irrelevant to the proof
      kernels::TeProgramInstance instance(data, tiles);
      const auto proven = analysis::proven_parallel_loops(instance.stmt());
      EXPECT_FALSE(proven.empty())
          << kernel << " axis " << axis << ": no proven parallel loop";
      std::vector<te::Tensor> params;
      for (const auto& [tensor, array] : instance.bindings()) {
        (void)array;
        params.push_back(tensor);
      }
      const analysis::ScreenResult screened =
          analysis::screen_program(instance.stmt(), params);
      EXPECT_TRUE(screened.ok())
          << kernel << " axis " << axis << ": " << screened.first_error();
    }
  }
}

TEST(AnalysisRace, AllShippedWidenedSchedulesAreProven) {
  // The full widened tier on every kernel: parallel axis 1 + vectorized
  // innermost + unroll 2 + pack must lower with machine-checked proofs —
  // the vectorized loop shows up in proven_vectorized_loops (the list the
  // C emitter keys its simd pragmas on) and the screen stays clean.
  for (const std::string& kernel : te_kernels()) {
    const std::vector<std::int64_t> dims =
        kernels::polybench_dims(kernel, kernels::Dataset::kMini);
    const auto data = kernels::make_te_kernel_data(kernel, dims);
    std::vector<std::int64_t> tiles = default_base_tiles(kernel, dims);
    tiles.insert(tiles.end(), {1, 4, /*vec=*/1, /*unroll=*/2, /*pack=*/1});
    kernels::TeProgramInstance instance(data, tiles);
    EXPECT_FALSE(analysis::proven_vectorized_loops(instance.stmt()).empty())
        << kernel << ": no proven vectorized loop";
    std::vector<te::Tensor> params;
    for (const auto& [tensor, array] : instance.bindings()) {
      (void)array;
      params.push_back(tensor);
    }
    const analysis::ScreenResult screened =
        analysis::screen_program(instance.stmt(), params);
    EXPECT_TRUE(screened.ok()) << kernel << ": " << screened.first_error();
  }
}

// --- config pre-screener -----------------------------------------------------

/// Counts measure() calls; the prescreen tests assert it stays at zero.
class CountingDevice final : public runtime::Device {
 public:
  std::string name() const override { return "counting"; }
  runtime::MeasureResult measure(const runtime::MeasureInput& input,
                                 const runtime::MeasureOption& option)
      override {
    (void)input;
    (void)option;
    ++measured;
    runtime::MeasureResult result;
    result.valid = true;
    result.runtime_s = 1.0;
    return result;
  }
  int measured = 0;
};

TEST(AnalysisScreen, ArmedFaultConfigNeverReachesTheDevice) {
  std::ostringstream sink;
  runtime::TraceLog trace(&sink);
  CountingDevice device;
  runtime::MeasureRunnerOptions options;
  options.prescreen = true;
  options.trace = &trace;
  options.strategy = "test";
  runtime::MeasureRunner runner(&device, options);

  const runtime::Workload workload =
      distd::make_fault_workload("fault.segv");
  const runtime::MeasureInput armed =
      distd::make_fault_input(workload, {distd::kFaultTrigger});
  const runtime::MeasureResult result =
      runner.measure_one(armed, runtime::MeasureOption{});

  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.error.rfind("analysis reject: ", 0), 0u) << result.error;
  EXPECT_EQ(device.measured, 0);
  EXPECT_EQ(runner.analysis_rejects(), 1u);

  std::map<std::string, int> counts;
  for (const Json& event : Json::parse_lines(sink.str())) {
    counts[event.at("event").as_string()]++;
  }
  EXPECT_EQ(counts["analysis_reject"], 1);
  EXPECT_EQ(counts["result"], 1);
}

TEST(AnalysisScreen, BenignFaultConfigPassesTheScreen) {
  CountingDevice device;
  runtime::MeasureRunnerOptions options;
  options.prescreen = true;
  runtime::MeasureRunner runner(&device, options);
  const runtime::Workload workload =
      distd::make_fault_workload("fault.segv");
  const runtime::MeasureInput benign =
      distd::make_fault_input(workload, {1});
  const runtime::MeasureResult result =
      runner.measure_one(benign, runtime::MeasureOption{});
  EXPECT_TRUE(result.valid);
  EXPECT_EQ(device.measured, 1);
  EXPECT_EQ(runner.analysis_rejects(), 0u);
}

TEST(AnalysisScreen, TrajectoryIsIdenticalOnLegalSpaces) {
  // On a space with no illegal configs the pre-screener must be a pure
  // pass-through: the tuner sees identical results, so the best-config
  // trajectory is bit-identical with and without screening.
  const kernels::Dataset dataset = kernels::Dataset::kMini;
  const autotvm::Task task = kernels::make_task(
      "gemm", dataset, runtime::ExecBackend::kInterp, codegen::JitOptions{});
  runtime::CpuDevice device;

  auto run_once = [&](bool screen) {
    framework::SessionOptions options;
    options.max_evaluations = 10;
    options.seed = 7;
    options.measure.prescreen = screen;
    framework::AutotuningSession session(&task, &device, options);
    return session.run(framework::StrategyKind::kAutotvmRandom);
  };

  const framework::SessionResult with = run_once(true);
  const framework::SessionResult without = run_once(false);
  EXPECT_EQ(with.analysis_rejects, 0u);
  ASSERT_EQ(with.db.records().size(), without.db.records().size());
  for (std::size_t i = 0; i < with.db.records().size(); ++i) {
    EXPECT_EQ(with.db.records()[i].tiles, without.db.records()[i].tiles)
        << "trajectory diverged at evaluation " << i;
    EXPECT_EQ(with.db.records()[i].valid, without.db.records()[i].valid)
        << "validity diverged at evaluation " << i;
  }
}

// --- fuzz: analyzer-accepted configs agree across execution tiers ------------

void expect_bits_equal(const runtime::NDArray& a, const runtime::NDArray& b,
                       const std::string& label) {
  ASSERT_EQ(a.shape(), b.shape()) << label;
  std::span<const double> av = a.f64(), bv = b.f64();
  for (std::size_t i = 0; i < av.size(); ++i) {
    ASSERT_EQ(av[i], bv[i]) << label << ": flat index " << i;
  }
}

TEST(AnalysisFuzz, AcceptedRandomConfigsAgreeAcrossTiers) {
  const codegen::JitOptions jit_options = [] {
    codegen::JitOptions options;
    options.cache_dir = testing::TempDir() + "tvmbo-analysis-fuzz";
    return options;
  }();
  const bool jit = codegen::JitProgram::toolchain_available(jit_options);
  Rng rng(2023);
  for (const std::string& kernel : te_kernels()) {
    const std::vector<std::int64_t> dims =
        kernels::polybench_dims(kernel, kernels::Dataset::kMini);
    const auto data = kernels::make_te_kernel_data(kernel, dims);
    kernels::ParallelKnobs knobs;
    knobs.enabled = true;
    knobs.max_threads = 2;
    const cs::ConfigurationSpace space =
        kernels::build_space(kernel, dims, knobs);
    for (int round = 0; round < 4; ++round) {
      const std::vector<std::int64_t> tiles =
          space.values_int(space.sample(rng));
      const std::string label = kernel + " tiles " + [&] {
        std::string s;
        for (std::int64_t t : tiles) s += std::to_string(t) + ",";
        return s;
      }();
      // The analyzer must accept everything the legal space produces...
      kernels::TeProgramInstance instance(data, tiles);
      std::vector<te::Tensor> params;
      for (const auto& [tensor, array] : instance.bindings()) {
        (void)array;
        params.push_back(tensor);
      }
      const analysis::ScreenResult screened =
          analysis::screen_program(instance.stmt(), params);
      ASSERT_TRUE(screened.ok()) << label << ": " << screened.first_error();
      // ...and accepted configs must agree bit-for-bit across tiers.
      const runtime::NDArray oracle = kernels::run_te_backend(
          data, tiles, runtime::ExecBackend::kInterp);
      const runtime::NDArray closure = kernels::run_te_backend(
          data, tiles, runtime::ExecBackend::kClosure);
      expect_bits_equal(oracle, closure, label + " (closure)");
      if (jit) {
        const runtime::NDArray jitted = kernels::run_te_backend(
            data, tiles, runtime::ExecBackend::kJit, jit_options);
        expect_bits_equal(oracle, jitted, label + " (jit)");
      }
    }
  }
}

}  // namespace
}  // namespace tvmbo
