#include "te/expr.h"

#include <gtest/gtest.h>

#include "te/printer.h"
#include "te/tensor.h"

namespace tvmbo::te {
namespace {

std::int64_t as_int_value(const Expr& e) {
  EXPECT_EQ(e->kind(), ExprKind::kIntImm);
  return static_cast<const IntImmNode*>(e.get())->value;
}

double as_float_value(const Expr& e) {
  EXPECT_EQ(e->kind(), ExprKind::kFloatImm);
  return static_cast<const FloatImmNode*>(e.get())->value;
}

TEST(Expr, IntConstantFolding) {
  EXPECT_EQ(as_int_value(make_int(3) + make_int(4)), 7);
  EXPECT_EQ(as_int_value(make_int(10) - make_int(4)), 6);
  EXPECT_EQ(as_int_value(make_int(3) * make_int(4)), 12);
  EXPECT_EQ(as_int_value(make_int(7) / make_int(2)), 3);
  EXPECT_EQ(as_int_value(min_expr(make_int(3), make_int(5))), 3);
  EXPECT_EQ(as_int_value(max_expr(make_int(3), make_int(5))), 5);
}

TEST(Expr, FloorSemanticsForNegatives) {
  EXPECT_EQ(as_int_value(floor_div(make_int(-7), make_int(2))), -4);
  EXPECT_EQ(as_int_value(floor_mod(make_int(-7), make_int(2))), 1);
  EXPECT_EQ(as_int_value(floor_div(make_int(7), make_int(2))), 3);
  EXPECT_EQ(as_int_value(floor_mod(make_int(7), make_int(2))), 1);
}

TEST(Expr, MixedFloatFolding) {
  EXPECT_DOUBLE_EQ(as_float_value(make_float(1.5) + make_int(2)), 3.5);
  EXPECT_DOUBLE_EQ(as_float_value(make_float(3.0) * make_float(0.5)), 1.5);
}

TEST(Expr, AlgebraicIdentities) {
  Var x = make_var("x");
  EXPECT_EQ((x + make_int(0)).get(), x.get());
  EXPECT_EQ((make_int(0) + Expr(x)).get(), x.get());
  EXPECT_EQ((x * make_int(1)).get(), x.get());
  EXPECT_TRUE(is_const_int(x * make_int(0), 0));
  EXPECT_EQ((x - make_int(0)).get(), x.get());
  EXPECT_EQ((x / make_int(1)).get(), x.get());
}

TEST(Expr, DivisionByZeroThrows) {
  EXPECT_THROW(make_int(1) / make_int(0), CheckError);
  EXPECT_THROW(floor_div(make_int(1), make_int(0)), CheckError);
}

TEST(Expr, CompareFolding) {
  EXPECT_TRUE(is_const_int(lt(make_int(1), make_int(2)), 1));
  EXPECT_TRUE(is_const_int(ge(make_int(1), make_int(2)), 0));
  EXPECT_TRUE(is_const_int(eq(make_int(3), make_int(3)), 1));
  Var x = make_var("x");
  EXPECT_EQ(lt(x, make_int(2))->kind(), ExprKind::kCompare);
}

TEST(Expr, SelectFoldsConstantCondition) {
  Var x = make_var("x");
  Var y = make_var("y");
  EXPECT_EQ(select(make_int(1), x, y).get(), x.get());
  EXPECT_EQ(select(make_int(0), x, y).get(), y.get());
  EXPECT_EQ(select(lt(x, y), x, y)->kind(), ExprKind::kSelect);
}

TEST(Expr, UnaryFolding) {
  EXPECT_DOUBLE_EQ(as_float_value(sqrt_expr(make_float(9.0))), 3.0);
  EXPECT_DOUBLE_EQ(as_float_value(neg(make_float(2.0))), -2.0);
  EXPECT_DOUBLE_EQ(as_float_value(abs_expr(make_float(-4.0))), 4.0);
  Var x = make_var("x");
  EXPECT_EQ(sqrt_expr(x)->kind(), ExprKind::kUnary);
}

TEST(Expr, VarsHaveUniqueIds) {
  Var a = make_var("i");
  Var b = make_var("i");
  EXPECT_NE(a->id, b->id);
}

TEST(Expr, SubstituteReplacesOnlyTargetVar) {
  Var i = make_var("i");
  Var j = make_var("j");
  Expr e = i * make_int(4) + j;
  Expr replaced = substitute(e, {{i, make_int(2)}});
  // 2*4 + j folds to 8 + j.
  EXPECT_EQ(to_string(replaced), "(8 + j)");
}

TEST(Expr, SubstituteIsNoopWithoutMatches) {
  Var i = make_var("i");
  Var other = make_var("z");
  Expr e = i + make_int(1);
  Expr replaced = substitute(e, {{other, make_int(5)}});
  EXPECT_EQ(replaced.get(), e.get());
}

TEST(Expr, SubstituteInsideTensorAccess) {
  Tensor a = placeholder({4, 4}, "A");
  Var i = make_var("i");
  Var j = make_var("j");
  Expr e = access(a, {i, j});
  Expr replaced = substitute(e, {{i, make_int(3)}});
  EXPECT_EQ(to_string(replaced), "A[3, j]");
}

TEST(Expr, SumRequiresAxes) {
  Var k = make_var("k");
  EXPECT_THROW(sum(Expr(k), {}), CheckError);
}

TEST(Expr, NestedReduceRejected) {
  Var k = make_var("k");
  Expr inner = sum(Expr(k), {k});
  EXPECT_THROW(sum(inner, {k}), CheckError);
  EXPECT_THROW(inner + make_int(1), CheckError);
}

TEST(Expr, CollectTensorsDeduplicates) {
  Tensor a = placeholder({2}, "A");
  Tensor b = placeholder({2}, "B");
  Var i = make_var("i");
  Expr e = access(a, {i}) * access(b, {i}) + access(a, {i});
  const auto tensors = collect_tensors(e);
  EXPECT_EQ(tensors.size(), 2u);
}

TEST(Expr, LogicalAndShortCircuitShape) {
  Var x = make_var("x");
  // logical_and(true, e) folds to e; logical_and(false, e) folds to 0.
  Expr e = lt(x, make_int(5));
  EXPECT_EQ(logical_and(make_int(1), e).get(), e.get());
  EXPECT_TRUE(is_const_int(logical_and(make_int(0), e), 0));
}

}  // namespace
}  // namespace tvmbo::te
