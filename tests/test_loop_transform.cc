// TIR-level schedule transforms: split/interchange on lowered loop IR,
// culminating in tiling the LU/Cholesky trailing updates exactly like the
// tuned native kernels — with the interpreter as the semantics oracle.
#include <gtest/gtest.h>

#include "kernels/reference.h"
#include "kernels/te_kernels.h"
#include "te/interp.h"
#include "te/loop_transform.h"
#include "te/printer.h"
#include "te/transform.h"

namespace tvmbo::te {
namespace {

using runtime::NDArray;

struct SimpleLoop {
  Tensor t = placeholder({12}, "T");
  Var i = make_var("i");
  Stmt stmt = make_for(i, 12, ForKind::kSerial,
                       make_store(t, {i}, Expr(i) * make_float(2.0)));

  NDArray run(const Stmt& program) const {
    NDArray out({12});
    Interpreter interp;
    interp.bind(t, &out);
    interp.run(program);
    return out;
  }
};

TEST(LoopTransform, SplitExactPreservesValues) {
  SimpleLoop fx;
  Var outer, inner;
  const Stmt split = split_loop(fx.stmt, fx.i, 4, &outer, &inner);
  EXPECT_EQ(count_stmts(split, StmtKind::kFor), 2u);
  EXPECT_EQ(find_loop(split, outer)->extent, 3);
  EXPECT_EQ(find_loop(split, inner)->extent, 4);
  EXPECT_EQ(count_stmts(split, StmtKind::kIfThenElse), 0u);
  const NDArray a = fx.run(fx.stmt);
  const NDArray b = fx.run(split);
  EXPECT_TRUE(a.allclose(b));
}

TEST(LoopTransform, SplitNonExactGuardsTail) {
  SimpleLoop fx;
  Var outer, inner;
  const Stmt split = split_loop(fx.stmt, fx.i, 5, &outer, &inner);
  EXPECT_EQ(find_loop(split, outer)->extent, 3);  // ceil(12/5)
  EXPECT_EQ(count_stmts(split, StmtKind::kIfThenElse), 1u);
  EXPECT_TRUE(fx.run(fx.stmt).allclose(fx.run(split)));
}

TEST(LoopTransform, SplitUnknownVarThrows) {
  SimpleLoop fx;
  Var stranger = make_var("q");
  EXPECT_THROW(split_loop(fx.stmt, stranger, 2), CheckError);
  EXPECT_THROW(split_loop(fx.stmt, fx.i, 0), CheckError);
}

TEST(LoopTransform, InterchangeSwapsPerfectNest) {
  Tensor t = placeholder({4, 6}, "T");
  Var i = make_var("i");
  Var j = make_var("j");
  Stmt nest = make_for(
      i, 4, ForKind::kSerial,
      make_for(j, 6, ForKind::kSerial,
               make_store(t, {i, j}, Expr(i) * make_int(10) + Expr(j))));
  const Stmt swapped = interchange_loops(nest, i, j);
  const auto order = leftmost_loop_vars(swapped);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0].get(), j.get());
  EXPECT_EQ(order[1].get(), i.get());
  // Same values either way (the store has no loop-carried dependence).
  NDArray a({4, 6}), b({4, 6});
  Interpreter ia, ib;
  ia.bind(t, &a);
  ia.run(nest);
  ib.bind(t, &b);
  ib.run(swapped);
  EXPECT_TRUE(a.allclose(b));
}

TEST(LoopTransform, InterchangeRejectsImperfectNest) {
  Tensor t = placeholder({4}, "T");
  Var i = make_var("i");
  Var j = make_var("j");
  // Two statements inside i: not a perfect nest around j.
  Stmt body = make_seq({make_store(t, {i}, make_float(0.0)),
                        make_for(j, 2, ForKind::kSerial,
                                 make_store(t, {i}, Expr(j)))});
  Stmt nest = make_for(i, 4, ForKind::kSerial, body);
  EXPECT_THROW(interchange_loops(nest, i, j), CheckError);
}

// The headline use: tile the LU trailing update at the IR level and check
// against the reference factorization for a sweep of tile pairs.
class LuIrTiling : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(LuIrTiling, TiledLuIrMatchesReference) {
  const auto [ty, tx] = GetParam();
  const std::int64_t n = 16;
  Tensor a = placeholder({n, n}, "A");
  kernels::FactorizationProgram lu = kernels::build_lu(a, n);

  Var io, ii, jo, ji;
  Stmt tiled = split_loop(lu.stmt, lu.update_i, ty, &io, &ii);
  tiled = split_loop(tiled, lu.update_j, tx, &jo, &ji);
  // {io, ii, jo, ji} -> {io, jo, ii, ji}: classic register-tile shape.
  tiled = interchange_loops(tiled, ii, jo);
  validate(tiled);

  NDArray work({n, n});
  kernels::init_lu(work);
  NDArray expected = work;
  kernels::ref_lu(expected);

  Interpreter interp;
  interp.bind(a, &work);
  interp.run(tiled);
  EXPECT_TRUE(work.allclose(expected, 1e-10))
      << "ty=" << ty << " tx=" << tx << "\n"
      << to_string(tiled);
}

INSTANTIATE_TEST_SUITE_P(
    Tiles, LuIrTiling,
    ::testing::Values(std::pair<int, int>{2, 2}, std::pair<int, int>{4, 8},
                      std::pair<int, int>{3, 5}, std::pair<int, int>{16, 1},
                      std::pair<int, int>{1, 16},
                      std::pair<int, int>{5, 7}));

TEST(LoopTransform, TiledCholeskyIrMatchesReference) {
  const std::int64_t n = 14;
  Tensor a = placeholder({n, n}, "A");
  kernels::FactorizationProgram chol = kernels::build_cholesky(a, n);

  Var io, ii, jo, ji;
  Stmt tiled = split_loop(chol.stmt, chol.update_i, 4, &io, &ii);
  tiled = split_loop(tiled, chol.update_j, 3, &jo, &ji);
  tiled = interchange_loops(tiled, ii, jo);
  validate(tiled);

  NDArray work({n, n});
  kernels::init_spd(work);
  NDArray expected = work;
  kernels::ref_cholesky(expected);

  Interpreter interp;
  interp.bind(a, &work);
  interp.run(tiled);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j <= i; ++j)
      EXPECT_NEAR(work.at2(i, j), expected.at2(i, j), 1e-10);
}

TEST(LoopTransform, SplitComposesWithSimplify) {
  SimpleLoop fx;
  Var outer, inner;
  Stmt split = split_loop(fx.stmt, fx.i, 12, &outer, &inner);
  // Outer extent 1 -> simplify inlines it away again.
  const Stmt simplified = simplify(split);
  EXPECT_EQ(count_stmts(simplified, StmtKind::kFor), 1u);
  EXPECT_TRUE(fx.run(fx.stmt).allclose(fx.run(simplified)));
}

}  // namespace
}  // namespace tvmbo::te
