#include "configspace/configspace.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/logging.h"
#include "configspace/divisors.h"

namespace tvmbo::cs {
namespace {

ConfigurationSpace paper_lu_space() {
  // Two tile factors over divisors(2000) — the paper's LU-large space.
  ConfigurationSpace space;
  space.add(tile_factor_param("P0", 2000));
  space.add(tile_factor_param("P1", 2000));
  return space;
}

TEST(Divisors, KnownSets) {
  EXPECT_EQ(divisors(12),
            (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(divisors(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(divisor_count(2000), 20u);   // paper LU-large per-param
  EXPECT_EQ(divisor_count(4000), 24u);   // paper LU-extralarge per-param
  EXPECT_EQ(divisor_count(1600), 21u);
  EXPECT_EQ(divisor_count(2400), 36u);
}

TEST(Divisors, SortedAndDividing) {
  const auto set = divisors(2400);
  for (std::size_t i = 1; i < set.size(); ++i) {
    EXPECT_LT(set[i - 1], set[i]);
  }
  for (std::int64_t d : set) EXPECT_EQ(2400 % d, 0);
}

TEST(Divisors, NonPositiveThrows) {
  EXPECT_THROW(divisors(0), CheckError);
  EXPECT_THROW(divisors(-4), CheckError);
}

TEST(ConfigSpace, CardinalityIsProduct) {
  const ConfigurationSpace space = paper_lu_space();
  EXPECT_EQ(space.cardinality(), 400u);  // Table 1: LU large
}

TEST(ConfigSpace, DuplicateNameThrows) {
  ConfigurationSpace space;
  space.add(tile_factor_param("P0", 8));
  EXPECT_THROW(space.add(tile_factor_param("P0", 8)), CheckError);
}

TEST(ConfigSpace, FlatIndexRoundTrip) {
  const ConfigurationSpace space = paper_lu_space();
  for (std::uint64_t flat : {0u, 1u, 19u, 20u, 399u}) {
    const Configuration config = space.from_flat_index(flat);
    EXPECT_EQ(space.to_flat_index(config), flat);
  }
  EXPECT_THROW(space.from_flat_index(400), CheckError);
}

TEST(ConfigSpace, FlatIndexFirstParamMostSignificant) {
  const ConfigurationSpace space = paper_lu_space();
  const Configuration config = space.from_flat_index(20);  // = 1*20 + 0
  EXPECT_EQ(config.index(0), 1);
  EXPECT_EQ(config.index(1), 0);
}

TEST(ConfigSpace, ValuesMapIndicesToTileSizes) {
  const ConfigurationSpace space = paper_lu_space();
  Configuration config = space.default_configuration();
  config.set_index(0, 16);  // divisors(2000)[16] == 400
  config.set_index(1, 10);  // divisors(2000)[10] == 50
  EXPECT_EQ(space.values_int(config),
            (std::vector<std::int64_t>{400, 50}));
}

TEST(ConfigSpace, SamplingIsUniformish) {
  const ConfigurationSpace space = paper_lu_space();
  Rng rng(5);
  std::map<std::int64_t, int> histogram;
  for (int i = 0; i < 20000; ++i) {
    histogram[space.sample(rng).index(0)]++;
  }
  EXPECT_EQ(histogram.size(), 20u);
  for (const auto& [index, count] : histogram) {
    EXPECT_NEAR(count, 1000, 150);
  }
}

TEST(ConfigSpace, NeighborChangesExactlyOneParam) {
  const ConfigurationSpace space = paper_lu_space();
  Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    const Configuration config = space.sample(rng);
    const Configuration moved = space.neighbor(config, rng);
    int changed = 0;
    for (std::size_t p = 0; p < space.num_params(); ++p) {
      if (config.index(p) != moved.index(p)) ++changed;
    }
    EXPECT_EQ(changed, 1);
  }
}

TEST(ConfigSpace, NeighborOrdinalMovesOneStep) {
  const ConfigurationSpace space = paper_lu_space();
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const Configuration config = space.sample(rng);
    const Configuration moved = space.neighbor(config, rng);
    for (std::size_t p = 0; p < space.num_params(); ++p) {
      const std::int64_t delta =
          std::abs(moved.index(p) - config.index(p));
      EXPECT_LE(delta, 2);  // 1 normally, 2 only via edge reflection
    }
  }
}

TEST(ConfigSpace, CategoricalParam) {
  ConfigurationSpace space;
  space.add(std::make_shared<CategoricalHyperparameter>(
      "algo", std::vector<std::string>{"lu", "cholesky", "3mm"}));
  EXPECT_EQ(space.cardinality(), 3u);
  EXPECT_EQ(space.param("algo").str_at(1), "cholesky");
  Rng rng(1);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(space.sample(rng).index(0));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(ConfigSpace, IntegerParam) {
  ConfigurationSpace space;
  space.add(std::make_shared<UniformIntegerHyperparameter>("n", 3, 7));
  EXPECT_EQ(space.cardinality(), 5u);
  EXPECT_DOUBLE_EQ(space.param("n").value_at(0), 3.0);
  EXPECT_DOUBLE_EQ(space.param("n").value_at(4), 7.0);
}

TEST(ConfigSpace, FloatParamMakesSpaceContinuous) {
  ConfigurationSpace space;
  space.add(tile_factor_param("P0", 8));
  space.add(std::make_shared<UniformFloatHyperparameter>("lr", 0.0, 1.0));
  EXPECT_FALSE(space.fully_discrete());
  EXPECT_EQ(space.cardinality(), 4u);  // continuous params excluded
  Rng rng(3);
  const Configuration config = space.sample(rng);
  EXPECT_GE(config.real(1), 0.0);
  EXPECT_LE(config.real(1), 1.0);
  EXPECT_THROW(space.from_flat_index(0), CheckError);
}

TEST(ConfigSpace, ConditionsDeactivateChildren) {
  ConfigurationSpace space;
  space.add(std::make_shared<CategoricalHyperparameter>(
      "use_split", std::vector<std::string>{"no", "yes"}));
  space.add(tile_factor_param("P0", 8));
  space.add_condition("P0", "use_split", 1);
  Configuration config = space.default_configuration();
  config.set_index(0, 0);
  EXPECT_FALSE(space.is_active(1, config));
  config.set_index(0, 1);
  EXPECT_TRUE(space.is_active(1, config));
}

TEST(ConfigSpace, ConditionParentMustPrecedeChild) {
  ConfigurationSpace space;
  space.add(tile_factor_param("P0", 8));
  space.add(std::make_shared<CategoricalHyperparameter>(
      "flag", std::vector<std::string>{"a", "b"}));
  EXPECT_THROW(space.add_condition("P0", "flag", 0), CheckError);
}

TEST(ConfigSpace, ToStringShowsNamesAndValues) {
  const ConfigurationSpace space = paper_lu_space();
  Configuration config = space.default_configuration();
  config.set_index(0, 16);
  config.set_index(1, 10);
  EXPECT_EQ(space.to_string(config), "P0=400, P1=50");
}

TEST(ConfigSpace, HashDistinguishesConfigs) {
  const ConfigurationSpace space = paper_lu_space();
  const Configuration a = space.from_flat_index(0);
  const Configuration b = space.from_flat_index(1);
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), space.from_flat_index(0).hash());
}

TEST(ConfigSpace, UnknownParamNameThrows) {
  const ConfigurationSpace space = paper_lu_space();
  EXPECT_THROW(space.param_index("nope"), CheckError);
}

}  // namespace
}  // namespace tvmbo::cs
