// Semantics tests for lowering + interpretation: any legal combination of
// split/reorder/fuse/annotations must compute exactly the same values as
// the unscheduled program. These are the oracle tests that make tuning
// over schedules trustworthy.
#include <gtest/gtest.h>

#include "kernels/reference.h"
#include "te/interp.h"
#include "te/printer.h"

namespace tvmbo::te {
namespace {

using runtime::NDArray;

struct MatmulFixture {
  std::int64_t m, n, k;
  Tensor a, b, c;
  NDArray ma, mb, expected;

  MatmulFixture(std::int64_t m, std::int64_t n, std::int64_t k)
      : m(m), n(n), k(k), ma({m, k}), mb({k, n}), expected({m, n}) {
    a = placeholder({m, k}, "A");
    b = placeholder({k, n}, "B");
    IterVar kk = reduce_axis(k, "k");
    c = compute(
        {m, n}, "C",
        [&](const std::vector<Var>& i) {
          return sum(access(a, {i[0], kk->var}) *
                         access(b, {kk->var, i[1]}),
                     {kk->var});
        },
        {kk});
    kernels::init_gemm(ma, mb);
    kernels::ref_matmul(ma, mb, expected);
  }

  NDArray run(Schedule& sched) {
    NDArray out({m, n});
    run_schedule(sched, {{a, &ma}, {b, &mb}, {c, &out}});
    return out;
  }
};

TEST(LowerInterp, UnscheduledMatmulMatchesReference) {
  MatmulFixture fx(6, 5, 7);
  Schedule sched({fx.c});
  const NDArray out = fx.run(sched);
  EXPECT_TRUE(out.allclose(fx.expected, 1e-12));
}

TEST(LowerInterp, PaperScheduleMatchesReference) {
  MatmulFixture fx(8, 8, 8);
  Schedule sched({fx.c});
  Stage& stage = sched[fx.c];
  auto [yo, yi] = stage.split(stage.op_axis()[0], 4);
  auto [xo, xi] = stage.split(stage.op_axis()[1], 2);
  stage.reorder({yo, xo, stage.op_reduce_axis()[0], yi, xi});
  const NDArray out = fx.run(sched);
  EXPECT_TRUE(out.allclose(fx.expected, 1e-12));
}

TEST(LowerInterp, NonExactSplitGuardProtectsBounds) {
  MatmulFixture fx(10, 7, 5);
  Schedule sched({fx.c});
  Stage& stage = sched[fx.c];
  auto [yo, yi] = stage.split(stage.op_axis()[0], 3);   // 10 % 3 != 0
  auto [xo, xi] = stage.split(stage.op_axis()[1], 4);   // 7 % 4 != 0
  stage.reorder({yo, xo, stage.op_reduce_axis()[0], yi, xi});
  const NDArray out = fx.run(sched);
  EXPECT_TRUE(out.allclose(fx.expected, 1e-12));
}

TEST(LowerInterp, SplitReduceAxis) {
  MatmulFixture fx(4, 4, 12);
  Schedule sched({fx.c});
  Stage& stage = sched[fx.c];
  auto [ko, ki] = stage.split(stage.op_reduce_axis()[0], 4);
  stage.reorder({ko, stage.op_axis()[0], stage.op_axis()[1], ki});
  const NDArray out = fx.run(sched);
  EXPECT_TRUE(out.allclose(fx.expected, 1e-12));
}

TEST(LowerInterp, FuseDataAxes) {
  MatmulFixture fx(6, 4, 3);
  Schedule sched({fx.c});
  Stage& stage = sched[fx.c];
  stage.fuse(stage.op_axis()[0], stage.op_axis()[1]);
  const NDArray out = fx.run(sched);
  EXPECT_TRUE(out.allclose(fx.expected, 1e-12));
}

TEST(LowerInterp, FuseThenSplit) {
  MatmulFixture fx(6, 4, 3);
  Schedule sched({fx.c});
  Stage& stage = sched[fx.c];
  IterVar fused = stage.fuse(stage.op_axis()[0], stage.op_axis()[1]);
  auto [fo, fi] = stage.split(fused, 5);  // 24 % 5 != 0 -> guard via fuse+split
  const NDArray out = fx.run(sched);
  EXPECT_TRUE(out.allclose(fx.expected, 1e-12));
}

TEST(LowerInterp, AnnotationsDoNotChangeSemantics) {
  MatmulFixture fx(8, 8, 4);
  Schedule sched({fx.c});
  Stage& stage = sched[fx.c];
  auto [yo, yi] = stage.split(stage.op_axis()[0], 2);
  // Concurrent kinds (parallel, vectorize) go on data axes — the race
  // prover rejects them on reduction axes — so interchange the x axis
  // innermost past the reduction and vectorize it.
  stage.reorder({yo, yi, stage.op_reduce_axis()[0], stage.op_axis()[1]});
  stage.parallel(yo);
  stage.unroll(yi);
  stage.vectorize(stage.op_axis()[1]);
  const NDArray out = fx.run(sched);
  EXPECT_TRUE(out.allclose(fx.expected, 1e-12));
}

// Property sweep: every divisor pair and several non-divisors must agree
// with the reference (the exact situation the tuners create).
class SplitSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SplitSweep, MatmulCorrectForAllTilePairs) {
  const auto [ty, tx] = GetParam();
  MatmulFixture fx(12, 18, 7);
  Schedule sched({fx.c});
  Stage& stage = sched[fx.c];
  auto [yo, yi] = stage.split(stage.op_axis()[0], ty);
  auto [xo, xi] = stage.split(stage.op_axis()[1], tx);
  stage.reorder({yo, xo, stage.op_reduce_axis()[0], yi, xi});
  const NDArray out = fx.run(sched);
  EXPECT_TRUE(out.allclose(fx.expected, 1e-12))
      << "ty=" << ty << " tx=" << tx
      << " max diff " << out.max_abs_diff(fx.expected);
}

std::vector<std::pair<int, int>> tile_pairs() {
  std::vector<std::pair<int, int>> pairs;
  for (int ty : {1, 2, 3, 4, 5, 6, 12}) {
    for (int tx : {1, 2, 5, 6, 9, 18, 7}) {
      pairs.emplace_back(ty, tx);
    }
  }
  return pairs;
}

INSTANTIATE_TEST_SUITE_P(AllTilePairs, SplitSweep,
                         ::testing::ValuesIn(tile_pairs()));

TEST(LowerInterp, MultiStagePipelineRealizesIntermediates) {
  // B = A + 1; C = B * B (elementwise) — realize must cover both stages.
  Tensor a = placeholder({4, 4}, "A");
  Tensor b = compute({4, 4}, "B", [&](const std::vector<Var>& i) {
    return access(a, {i[0], i[1]}) + make_float(1.0);
  });
  Tensor c = compute({4, 4}, "C", [&](const std::vector<Var>& i) {
    return access(b, {i[0], i[1]}) * access(b, {i[0], i[1]});
  });
  Schedule sched({c});
  NDArray in({4, 4});
  in.fill(2.0);
  NDArray out({4, 4});
  const Stmt program = run_schedule(sched, {{a, &in}, {c, &out}});
  EXPECT_EQ(count_stmts(program, StmtKind::kRealize), 1u);
  for (double v : out.f64()) EXPECT_DOUBLE_EQ(v, 9.0);
}

TEST(LowerInterp, UnboundPlaceholderThrows) {
  Tensor a = placeholder({2}, "A");
  Tensor b = compute({2}, "B", [&](const std::vector<Var>& i) {
    return access(a, {i[0]}) + make_float(1.0);
  });
  Schedule sched({b});
  NDArray out({2});
  Interpreter interp;
  interp.bind(b, &out);
  EXPECT_THROW(interp.run(lower(sched)), CheckError);
}

TEST(LowerInterp, BindShapeMismatchThrows) {
  Tensor a = placeholder({2, 2}, "A");
  NDArray wrong({3, 3});
  Interpreter interp;
  EXPECT_THROW(interp.bind(a, &wrong), CheckError);
}

TEST(LowerInterp, StoreCountReflectsGuards) {
  // Exact split: stores == m*n (init) + m*n*k (updates).
  MatmulFixture fx(4, 4, 2);
  Schedule exact({fx.c});
  Stage& stage = exact[fx.c];
  auto [yo, yi] = stage.split(stage.op_axis()[0], 2);
  NDArray out({4, 4});
  Interpreter interp;
  interp.bind(fx.a, &fx.ma);
  interp.bind(fx.b, &fx.mb);
  interp.bind(fx.c, &out);
  interp.run(lower(exact));
  EXPECT_EQ(interp.store_count(), 16u + 32u);
}

TEST(LowerInterp, GuardSkipsOutOfBoundsStores) {
  MatmulFixture fx(5, 4, 2);  // split 5 by 2 -> 1 padded row skipped
  Schedule sched({fx.c});
  Stage& stage = sched[fx.c];
  stage.split(stage.op_axis()[0], 2);
  NDArray out({5, 4});
  Interpreter interp;
  interp.bind(fx.a, &fx.ma);
  interp.bind(fx.b, &fx.mb);
  interp.bind(fx.c, &out);
  interp.run(lower(sched));
  // init 20 + updates 5*4*2 = 40 (not 6*4*2 = 48: guard skipped 8).
  EXPECT_EQ(interp.store_count(), 20u + 40u);
}

TEST(LowerInterp, LoweredProgramStructure) {
  MatmulFixture fx(8, 8, 8);
  Schedule sched({fx.c});
  Stage& stage = sched[fx.c];
  auto [yo, yi] = stage.split(stage.op_axis()[0], 4);
  auto [xo, xi] = stage.split(stage.op_axis()[1], 2);
  stage.reorder({yo, xo, stage.op_reduce_axis()[0], yi, xi});
  const Stmt program = lower(sched);
  // init nest (2 loops) + update nest (5 loops); deepest is 5.
  EXPECT_EQ(loop_depth(program), 5u);
  EXPECT_EQ(count_stmts(program, StmtKind::kStore), 2u);
  EXPECT_EQ(count_stmts(program, StmtKind::kIfThenElse), 0u);  // exact
}

}  // namespace
}  // namespace tvmbo::te
