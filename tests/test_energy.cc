// Energy-objective extension tests: the simulated device's power model
// and the session's multi-objective support (toward the ytopt
// performance+energy tuning line of work the paper builds on).
#include <gtest/gtest.h>

#include "framework/session.h"
#include "kernels/polybench.h"
#include "runtime/cpu_device.h"
#include "runtime/swing_sim.h"

namespace tvmbo {
namespace {

using kernels::Dataset;

TEST(Energy, PowerWithinBoardEnvelope) {
  runtime::SwingSimDevice device;
  const auto workload = kernels::make_workload("lu", Dataset::kLarge);
  const auto space = kernels::build_space("lu", workload.dims);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const auto tiles = space.values_int(space.sample(rng));
    const double watts = device.power_watts(workload, tiles);
    EXPECT_GE(watts, 50.0);
    EXPECT_LE(watts, 420.0);
  }
}

TEST(Energy, FasterConfigsDrawMorePower) {
  runtime::SwingSimDevice device;
  const auto workload = kernels::make_workload("lu", Dataset::kLarge);
  const std::int64_t good[2] = {25, 50};    // near the surface optimum
  const std::int64_t bad[2] = {2000, 1};    // pathological
  EXPECT_LT(device.surface_runtime(workload, good),
            device.surface_runtime(workload, bad));
  EXPECT_GT(device.power_watts(workload, good),
            device.power_watts(workload, bad));
}

TEST(Energy, RaceToIdleUsuallyWinsOnEnergyToo) {
  // The runtime gap between good and terrible configs dwarfs the power
  // gap, so the fast config also consumes less total energy.
  runtime::SwingSimDevice device;
  const auto workload = kernels::make_workload("lu", Dataset::kLarge);
  const std::int64_t good[2] = {25, 50};
  const std::int64_t bad[2] = {2000, 1};
  EXPECT_LT(device.surface_energy(workload, good),
            device.surface_energy(workload, bad));
}

TEST(Energy, EnergyAndRuntimeOptimaCanDiffer) {
  // Exhaustively check the LU-large space: the argmin of energy need not
  // equal the argmin of runtime (that tension is what makes energy tuning
  // a distinct problem). We assert the weaker, always-true property that
  // the energy-optimal config is not energy-dominated, and report both.
  runtime::SwingSimDevice device;
  const auto workload = kernels::make_workload("lu", Dataset::kLarge);
  const auto space = kernels::build_space("lu", workload.dims);
  double best_runtime = 1e300, best_energy = 1e300;
  std::vector<std::int64_t> runtime_tiles, energy_tiles;
  for (std::uint64_t flat = 0; flat < space.cardinality(); ++flat) {
    const auto tiles = space.values_int(space.from_flat_index(flat));
    const double t = device.surface_runtime(workload, tiles);
    const double e = device.surface_energy(workload, tiles);
    if (t < best_runtime) {
      best_runtime = t;
      runtime_tiles = tiles;
    }
    if (e < best_energy) {
      best_energy = e;
      energy_tiles = tiles;
    }
  }
  // Energy at the runtime optimum must be >= the energy optimum.
  EXPECT_GE(device.surface_energy(workload, runtime_tiles),
            best_energy * 0.999999);
}

TEST(Energy, MeasureReportsEnergy) {
  runtime::SwingSimDevice device;
  runtime::MeasureInput input;
  input.workload = kernels::make_workload("lu", Dataset::kLarge);
  input.tiles = {25, 50};
  const auto result = device.measure(input, runtime::MeasureOption{});
  EXPECT_GT(result.energy_j, 0.0);
  EXPECT_NEAR(result.energy_j,
              device.power_watts(input.workload, input.tiles) *
                  result.runtime_s,
              1e-9);
}

TEST(Energy, CpuDeviceReportsZeroEnergy) {
  runtime::CpuDevice device;
  runtime::MeasureInput input;
  input.workload = kernels::make_workload("lu", Dataset::kMini);
  input.tiles = {2, 2};
  input.run = [] {};
  const auto result = device.measure(input, runtime::MeasureOption{});
  EXPECT_DOUBLE_EQ(result.energy_j, 0.0);
}

TEST(Energy, SessionTunesForEnergyObjective) {
  const autotvm::Task task = kernels::make_task("lu", Dataset::kLarge);
  runtime::SwingSimDevice device(11);
  framework::SessionOptions options;
  options.max_evaluations = 60;
  options.objective = framework::Objective::kEnergy;
  framework::AutotuningSession session(&task, &device, options);
  const auto result = session.run(framework::StrategyKind::kYtopt);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_GT(result.best->energy_j, 0.0);
  // The chosen best must be the energy minimum of the database.
  for (const auto& record : result.db.records()) {
    if (record.valid) {
      EXPECT_LE(result.best->energy_j, record.energy_j + 1e-12);
    }
  }
}

TEST(Energy, EnergyObjectiveInvalidWithoutPowerMeter) {
  // On a device without a power model, energy tuning cannot proceed:
  // every trial is marked invalid and no best is found.
  autotvm::Task task = kernels::make_task(
      "lu", "mini", kernels::polybench_dims("lu", Dataset::kMini),
      /*executable=*/true);
  runtime::CpuDevice device;
  framework::SessionOptions options;
  options.max_evaluations = 5;
  options.objective = framework::Objective::kEnergy;
  options.charge_strategy_overhead = false;
  framework::AutotuningSession session(&task, &device, options);
  const auto result = session.run(framework::StrategyKind::kAutotvmRandom);
  EXPECT_FALSE(result.best.has_value());
}

TEST(Energy, EdpObjectiveSelectsByProduct) {
  const autotvm::Task task = kernels::make_task("lu", Dataset::kLarge);
  runtime::SwingSimDevice device(13);
  framework::SessionOptions options;
  options.max_evaluations = 40;
  options.objective = framework::Objective::kEnergyDelay;
  framework::AutotuningSession session(&task, &device, options);
  const auto result = session.run(framework::StrategyKind::kAutotvmRandom);
  ASSERT_TRUE(result.best.has_value());
  const double best_edp = result.best->energy_j * result.best->runtime_s;
  for (const auto& record : result.db.records()) {
    if (record.valid) {
      EXPECT_LE(best_edp, record.energy_j * record.runtime_s + 1e-9);
    }
  }
}

TEST(Energy, RecordsRoundTripEnergyThroughJson) {
  runtime::TrialRecord record;
  record.eval_index = 1;
  record.strategy = "ytopt";
  record.workload_id = "lu/large[2000]";
  record.tiles = {25, 50};
  record.runtime_s = 1.66;
  record.energy_j = 512.5;
  const auto restored =
      runtime::TrialRecord::from_json(record.to_json());
  EXPECT_DOUBLE_EQ(restored.energy_j, 512.5);
}

TEST(Energy, ObjectiveNames) {
  EXPECT_STREQ(framework::objective_name(framework::Objective::kRuntime),
               "runtime");
  EXPECT_STREQ(framework::objective_name(framework::Objective::kEnergy),
               "energy");
  EXPECT_STREQ(
      framework::objective_name(framework::Objective::kEnergyDelay),
      "energy-delay");
}

}  // namespace
}  // namespace tvmbo
