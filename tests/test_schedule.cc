#include "te/schedule.h"

#include <gtest/gtest.h>

namespace tvmbo::te {
namespace {

Tensor simple_matmul(std::int64_t m, std::int64_t n, std::int64_t k,
                     Tensor* a_out = nullptr, Tensor* b_out = nullptr,
                     IterVar* k_out = nullptr) {
  Tensor a = placeholder({m, k}, "A");
  Tensor b = placeholder({k, n}, "B");
  IterVar kk = reduce_axis(k, "k");
  Tensor c = compute(
      {m, n}, "C",
      [&](const std::vector<Var>& i) {
        return sum(access(a, {i[0], kk->var}) * access(b, {kk->var, i[1]}),
                   {kk->var});
      },
      {kk});
  if (a_out) *a_out = a;
  if (b_out) *b_out = b;
  if (k_out) *k_out = kk;
  return c;
}

TEST(Schedule, InitialLeafOrderIsAxesThenReduce) {
  Tensor c = simple_matmul(4, 6, 8);
  Schedule sched({c});
  const auto& leaves = sched[c].leaf_iter_vars();
  ASSERT_EQ(leaves.size(), 3u);
  EXPECT_EQ(leaves[0]->kind, IterKind::kData);
  EXPECT_EQ(leaves[1]->kind, IterKind::kData);
  EXPECT_EQ(leaves[2]->kind, IterKind::kReduce);
  EXPECT_EQ(leaves[2]->extent, 8);
}

TEST(Schedule, SplitExactExtents) {
  Tensor c = simple_matmul(8, 6, 4);
  Schedule sched({c});
  Stage& stage = sched[c];
  auto [outer, inner] = stage.split(stage.op_axis()[0], 2);
  EXPECT_EQ(outer->extent, 4);
  EXPECT_EQ(inner->extent, 2);
  const auto& leaves = stage.leaf_iter_vars();
  ASSERT_EQ(leaves.size(), 4u);
  EXPECT_EQ(leaves[0].get(), outer.get());
  EXPECT_EQ(leaves[1].get(), inner.get());
  EXPECT_FALSE(stage.needs_guard());
}

TEST(Schedule, SplitNonExactNeedsGuard) {
  Tensor c = simple_matmul(10, 6, 4);
  Schedule sched({c});
  Stage& stage = sched[c];
  auto [outer, inner] = stage.split(stage.op_axis()[0], 3);
  EXPECT_EQ(outer->extent, 4);  // ceil(10/3)
  EXPECT_EQ(inner->extent, 3);
  EXPECT_TRUE(stage.needs_guard());
}

TEST(Schedule, SplitFactorLargerThanExtentClampsInner) {
  Tensor c = simple_matmul(4, 6, 4);
  Schedule sched({c});
  Stage& stage = sched[c];
  auto [outer, inner] = stage.split(stage.op_axis()[0], 100);
  EXPECT_EQ(outer->extent, 1);
  EXPECT_EQ(inner->extent, 4);
}

TEST(Schedule, ChainedSplits) {
  Tensor c = simple_matmul(16, 6, 4);
  Schedule sched({c});
  Stage& stage = sched[c];
  auto [outer, inner] = stage.split(stage.op_axis()[0], 8);
  auto [oo, oi] = stage.split(outer, 2);
  EXPECT_EQ(oo->extent, 1);
  EXPECT_EQ(oi->extent, 2);
  EXPECT_EQ(stage.leaf_iter_vars().size(), 5u);
}

TEST(Schedule, SplitNonLeafThrows) {
  Tensor c = simple_matmul(8, 6, 4);
  Schedule sched({c});
  Stage& stage = sched[c];
  auto [outer, inner] = stage.split(stage.op_axis()[0], 2);
  EXPECT_THROW(stage.split(stage.op_axis()[0], 2), CheckError);
}

TEST(Schedule, ReorderPaperPattern) {
  // The paper's reorder(yo, xo, k, yi, xi).
  Tensor c = simple_matmul(8, 8, 4);
  Schedule sched({c});
  Stage& stage = sched[c];
  auto [yo, yi] = stage.split(stage.op_axis()[0], 2);
  auto [xo, xi] = stage.split(stage.op_axis()[1], 2);
  const IterVar k = stage.op_reduce_axis()[0];
  stage.reorder({yo, xo, k, yi, xi});
  const auto& leaves = stage.leaf_iter_vars();
  ASSERT_EQ(leaves.size(), 5u);
  EXPECT_EQ(leaves[0].get(), yo.get());
  EXPECT_EQ(leaves[1].get(), xo.get());
  EXPECT_EQ(leaves[2].get(), k.get());
  EXPECT_EQ(leaves[3].get(), yi.get());
  EXPECT_EQ(leaves[4].get(), xi.get());
}

TEST(Schedule, PartialReorderKeepsOtherPositions) {
  Tensor c = simple_matmul(8, 8, 4);
  Schedule sched({c});
  Stage& stage = sched[c];
  const IterVar y = stage.op_axis()[0];
  const IterVar x = stage.op_axis()[1];
  const IterVar k = stage.op_reduce_axis()[0];
  stage.reorder({k, y});  // swap k into y's slot and vice versa; x stays
  const auto& leaves = stage.leaf_iter_vars();
  EXPECT_EQ(leaves[0].get(), k.get());
  EXPECT_EQ(leaves[1].get(), x.get());
  EXPECT_EQ(leaves[2].get(), y.get());
}

TEST(Schedule, ReorderDuplicateThrows) {
  Tensor c = simple_matmul(8, 8, 4);
  Schedule sched({c});
  Stage& stage = sched[c];
  const IterVar y = stage.op_axis()[0];
  EXPECT_THROW(stage.reorder({y, y}), CheckError);
}

TEST(Schedule, FuseAdjacentLeaves) {
  Tensor c = simple_matmul(4, 6, 8);
  Schedule sched({c});
  Stage& stage = sched[c];
  IterVar fused = stage.fuse(stage.op_axis()[0], stage.op_axis()[1]);
  EXPECT_EQ(fused->extent, 24);
  EXPECT_EQ(stage.leaf_iter_vars().size(), 2u);
  EXPECT_EQ(stage.leaf_iter_vars()[0].get(), fused.get());
}

TEST(Schedule, FuseNonAdjacentThrows) {
  Tensor c = simple_matmul(4, 6, 8);
  Schedule sched({c});
  Stage& stage = sched[c];
  // y and k are not adjacent (x sits between them).
  EXPECT_THROW(stage.fuse(stage.op_axis()[0], stage.op_reduce_axis()[0]),
               CheckError);
}

TEST(Schedule, FuseDataWithReduceThrows) {
  Tensor c = simple_matmul(4, 6, 8);
  Schedule sched({c});
  Stage& stage = sched[c];
  // x and k are adjacent but of different kinds.
  EXPECT_THROW(stage.fuse(stage.op_axis()[1], stage.op_reduce_axis()[0]),
               CheckError);
}

TEST(Schedule, TileConvenience) {
  Tensor c = simple_matmul(8, 8, 4);
  Schedule sched({c});
  Stage& stage = sched[c];
  const auto tiled =
      stage.tile(stage.op_axis()[0], stage.op_axis()[1], 4, 2);
  const auto& leaves = stage.leaf_iter_vars();
  ASSERT_EQ(leaves.size(), 5u);
  EXPECT_EQ(leaves[0].get(), tiled[0].get());  // y_outer
  EXPECT_EQ(leaves[1].get(), tiled[1].get());  // x_outer
  EXPECT_EQ(leaves[2].get(), tiled[2].get());  // y_inner
  EXPECT_EQ(leaves[3].get(), tiled[3].get());  // x_inner
}

TEST(Schedule, Annotations) {
  Tensor c = simple_matmul(8, 8, 4);
  Schedule sched({c});
  Stage& stage = sched[c];
  const IterVar y = stage.op_axis()[0];
  const IterVar x = stage.op_axis()[1];
  stage.parallel(y);
  EXPECT_EQ(stage.annotation(y), ForKind::kParallel);
  EXPECT_EQ(stage.annotation(x), ForKind::kSerial);
  // vectorize may target any leaf — lowering demands the machine-checked
  // race-freedom proof, which is the actual gate — but not a non-leaf.
  stage.vectorize(x);
  EXPECT_EQ(stage.annotation(x), ForKind::kVectorized);
  auto [xo, xi] = stage.split(stage.op_reduce_axis()[0], 2);
  (void)xo;
  stage.vectorize(xi);
  EXPECT_EQ(stage.annotation(xi), ForKind::kVectorized);
  // ... but a non-leaf target still throws.
  EXPECT_THROW(stage.vectorize(stage.op_reduce_axis()[0]), CheckError);
}

TEST(Schedule, CacheWriteValidatesSource) {
  Tensor a, b;
  Tensor c = simple_matmul(8, 8, 4, &a, &b);
  Schedule sched({c});
  Stage& stage = sched[c];
  stage.cache_write(a);
  ASSERT_EQ(stage.pack_sources().size(), 1u);
  EXPECT_EQ(stage.pack_sources()[0].get(), a.get());
  // Duplicates, self-packing, and non-input tensors are rejected.
  EXPECT_THROW(stage.cache_write(a), CheckError);
  EXPECT_THROW(stage.cache_write(c), CheckError);
  Tensor other = placeholder({8, 8}, "other");
  EXPECT_THROW(stage.cache_write(other), CheckError);
  stage.cache_write(b);
  EXPECT_EQ(stage.pack_sources().size(), 2u);
}

TEST(Schedule, StageLookupUnknownTensorThrows) {
  Tensor c = simple_matmul(4, 4, 4);
  Tensor other = simple_matmul(4, 4, 4);
  Schedule sched({c});
  EXPECT_THROW(sched[other], CheckError);
}

TEST(Schedule, PlaceholdersHaveNoStage) {
  Tensor a = placeholder({4}, "A");
  Tensor b = compute({4}, "B", [&](const std::vector<Var>& i) {
    return access(a, {i[0]}) + make_float(1.0);
  });
  Schedule sched({b});
  EXPECT_THROW(sched[a], CheckError);
}

TEST(Schedule, SplitZeroFactorThrows) {
  Tensor c = simple_matmul(4, 4, 4);
  Schedule sched({c});
  Stage& stage = sched[c];
  EXPECT_THROW(stage.split(stage.op_axis()[0], 0), CheckError);
}

}  // namespace
}  // namespace tvmbo::te
