// MeasureRunner: deterministic ordering, serial/parallel equivalence,
// per-trial fault isolation, retry policy, and the JSON-lines trace.
#include "runtime/measure_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <sstream>
#include <thread>

#include "common/logging.h"
#include "framework/session.h"
#include "kernels/polybench.h"
#include "runtime/cpu_device.h"
#include "runtime/swing_sim.h"
#include "tuners/measure_loop.h"
#include "tuners/random_tuner.h"
#include "ytopt/bayes_opt.h"

namespace tvmbo::runtime {
namespace {

Workload lu_workload(std::int64_t n) {
  Workload w;
  w.kernel = "lu";
  w.size_name = "large";
  w.dims = {n};
  return w;
}

/// A batch of distinct simulated-device inputs sampled from the LU space.
std::vector<MeasureInput> sim_batch(std::size_t count) {
  const Workload w = lu_workload(2000);
  const auto space = kernels::build_space("lu", w.dims);
  Rng rng(17);
  std::vector<MeasureInput> inputs;
  for (std::size_t i = 0; i < count; ++i) {
    MeasureInput input;
    input.workload = w;
    input.tiles = space.values_int(space.sample(rng));
    inputs.push_back(std::move(input));
  }
  return inputs;
}

TEST(MeasureRunner, ParallelEqualsSerialOnSwingSim) {
  const std::vector<MeasureInput> inputs = sim_batch(16);
  MeasureOption option;
  option.repeat = 3;

  SwingSimDevice serial_device(2023);
  MeasureRunner serial(&serial_device);  // default: serial fallback
  const auto serial_results = serial.measure_batch(inputs, option);

  SwingSimDevice parallel_device(2023);
  MeasureRunnerOptions parallel_options;
  parallel_options.parallel = true;
  ThreadPool pool(4);  // explicit: the default pool may be single-threaded
  MeasureRunner parallel(&parallel_device, parallel_options, &pool);
  const auto parallel_results = parallel.measure_batch(inputs, option);

  ASSERT_EQ(serial_results.size(), parallel_results.size());
  for (std::size_t i = 0; i < serial_results.size(); ++i) {
    EXPECT_DOUBLE_EQ(parallel_results[i].runtime_s,
                     serial_results[i].runtime_s)
        << "trial " << i;
    EXPECT_DOUBLE_EQ(parallel_results[i].compile_s,
                     serial_results[i].compile_s);
    EXPECT_DOUBLE_EQ(parallel_results[i].energy_j,
                     serial_results[i].energy_j);
    EXPECT_EQ(parallel_results[i].valid, serial_results[i].valid);
  }
}

TEST(MeasureRunner, FaultIsolationOneThrowingTrialRestSucceed) {
  CpuDevice device;
  std::vector<MeasureInput> inputs;
  for (int i = 0; i < 6; ++i) {
    MeasureInput input;
    input.workload = lu_workload(8);
    if (i == 3) {
      input.run = [] { throw std::runtime_error("trial 3 exploded"); };
    } else {
      input.run = [] {};
    }
    inputs.push_back(std::move(input));
  }
  MeasureRunnerOptions options;
  options.parallel = true;
  ThreadPool pool(4);
  MeasureRunner runner(&device, options, &pool);
  const auto results = runner.measure_batch(inputs, MeasureOption{});
  ASSERT_EQ(results.size(), 6u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i == 3) {
      EXPECT_FALSE(results[i].valid);
      EXPECT_EQ(results[i].error, "trial 3 exploded");
    } else {
      EXPECT_TRUE(results[i].valid) << "trial " << i;
      EXPECT_TRUE(results[i].error.empty());
    }
  }
}

TEST(MeasureRunner, TimeoutIsolatedInParallelBatch) {
  CpuDevice device;
  std::vector<MeasureInput> inputs;
  for (int i = 0; i < 4; ++i) {
    MeasureInput input;
    input.workload = lu_workload(8);
    if (i == 1) {
      input.run = [] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      };
    } else {
      input.run = [] {};
    }
    inputs.push_back(std::move(input));
  }
  MeasureOption option;
  option.repeat = 1;
  option.timeout_s = 0.005;
  MeasureRunnerOptions options;
  options.parallel = true;
  ThreadPool pool(4);
  MeasureRunner runner(&device, options, &pool);
  const auto results = runner.measure_batch(inputs, option);
  EXPECT_FALSE(results[1].valid);
  EXPECT_EQ(results[1].error.rfind("timeout", 0), 0u);
  for (std::size_t i : {0u, 2u, 3u}) {
    EXPECT_TRUE(results[i].valid) << "trial " << i;
  }
}

TEST(MeasureRunner, ResultsInSubmissionOrderDespiteCompletionOrder) {
  // Later-submitted trials finish first (shorter sleeps); each result
  // must still land in its submission slot.
  CpuDevice device;
  const int n = 6;
  std::vector<MeasureInput> inputs;
  for (int i = 0; i < n; ++i) {
    MeasureInput input;
    input.workload = lu_workload(8);
    input.run = [i] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2 * (n - i)));
    };
    inputs.push_back(std::move(input));
  }
  MeasureOption option;
  option.repeat = 1;
  MeasureRunnerOptions options;
  options.parallel = true;
  ThreadPool pool(4);  // real concurrency: completion order != submission
  MeasureRunner runner(&device, options, &pool);
  const auto results = runner.measure_batch(inputs, option);
  for (int i = 0; i + 1 < n; ++i) {
    EXPECT_GT(results[i].runtime_s, results[i + 1].runtime_s)
        << "slot " << i;
  }
}

/// Fails the first `failures_per_config` measurements of each distinct
/// configuration, then succeeds — a transient fault.
class TransientlyFlakyDevice final : public Device {
 public:
  TransientlyFlakyDevice(Device* inner, int failures_per_config)
      : inner_(inner), failures_per_config_(failures_per_config) {}

  std::string name() const override { return "transient"; }

  MeasureResult measure(const MeasureInput& input,
                        const MeasureOption& option) override {
    const std::string key = input.workload.id();
    if (attempts_[key]++ < failures_per_config_) {
      throw std::runtime_error("transient fault");
    }
    return inner_->measure(input, option);
  }

 private:
  Device* inner_;
  int failures_per_config_;
  std::map<std::string, int> attempts_;
};

TEST(MeasureRunner, RetryPolicyRecoversTransientFailures) {
  SwingSimDevice sim(3);
  TransientlyFlakyDevice flaky(&sim, 2);
  MeasureRunnerOptions options;
  options.retry.max_retries = 2;
  MeasureRunner runner(&flaky, options);
  MeasureInput input;
  input.workload = lu_workload(2000);
  input.tiles = {40, 50};
  MeasureOption measure_option;
  const MeasureResult result = runner.measure_one(input, measure_option);
  EXPECT_TRUE(result.valid);
  EXPECT_GT(result.runtime_s, 0.0);
}

TEST(MeasureRunner, NoRetriesReportsTransientFailure) {
  SwingSimDevice sim(3);
  TransientlyFlakyDevice flaky(&sim, 1);
  MeasureRunner runner(&flaky);
  MeasureInput input;
  input.workload = lu_workload(2000);
  input.tiles = {40, 50};
  const MeasureResult result = runner.measure_one(input, MeasureOption{});
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.error, "transient fault");
}

TEST(MeasureRunner, RetryPolicyDoesNotRetryTimeoutsByDefault) {
  SwingSimDevice sim(3);
  MeasureRunnerOptions options;
  options.retry.max_retries = 5;
  MeasureRunner runner(&sim, options);
  MeasureInput input;
  input.workload = lu_workload(2000);
  input.tiles = {2000, 1};  // pathologically slow configuration
  MeasureOption option;
  option.repeat = 1;
  option.timeout_s = 0.001;
  const MeasureResult result = runner.measure_one(input, option);
  EXPECT_FALSE(result.valid);
  // One attempt only (timeouts are persistent): trace would show no
  // retries; here we just assert the failure is preserved.
  EXPECT_EQ(result.error.rfind("timeout", 0), 0u);
}

TEST(MeasureRunner, TraceLogRecordsTrialLifecycle) {
  std::ostringstream sink;
  TraceLog trace(&sink);
  SwingSimDevice sim(5);
  TransientlyFlakyDevice flaky(&sim, 1);
  MeasureRunnerOptions options;
  options.retry.max_retries = 1;
  options.trace = &trace;
  options.strategy = "ytopt";
  MeasureRunner runner(&flaky, options);

  const auto inputs = sim_batch(2);
  runner.measure_batch(inputs, MeasureOption{});

  const std::vector<Json> events = Json::parse_lines(sink.str());
  ASSERT_FALSE(events.empty());
  std::map<std::string, int> counts;
  double last_ts = -1.0;
  for (const Json& event : events) {
    ASSERT_TRUE(event.is_object());
    counts[event.at("event").as_string()]++;
    EXPECT_EQ(event.at("strategy").as_string(), "ytopt");
    EXPECT_GE(event.at("ts").as_double(), last_ts);
    last_ts = event.at("ts").as_double();
  }
  EXPECT_EQ(counts["proposed"], 2);
  EXPECT_EQ(counts["result"], 2);
  // Both configs share one workload id, so the transient device fails
  // only the very first attempt: one retry event total.
  EXPECT_EQ(counts["retry"], 1);
  EXPECT_GE(counts["compile"], 3);  // 2 trials + 1 retried attempt
  EXPECT_EQ(counts["compile"], counts["run"]);
}

TEST(MeasureRunner, NestedDispatchFromWorkerRunsInline) {
  // A runner invoked from inside a pool worker must not deadlock waiting
  // for free workers.
  CpuDevice device;
  MeasureRunnerOptions options;
  options.parallel = true;
  ThreadPool pool(2);
  MeasureRunner runner(&device, options, &pool);
  auto future = pool.submit([&] {
    std::vector<MeasureInput> inputs;
    for (int i = 0; i < 4; ++i) {
      MeasureInput input;
      input.workload = lu_workload(8);
      input.run = [] {};
      inputs.push_back(std::move(input));
    }
    return runner.measure_batch(inputs, MeasureOption{}).size();
  });
  EXPECT_EQ(future.get(), 4u);
}

TEST(MeasureLoop, QlcbBatchParallelEqualsSerial) {
  // The qLCB batch path end-to-end: ytopt proposes batches of 8, the
  // runner measures them — parallel and serial engines must produce the
  // same trial history on the simulated device.
  const Workload w = lu_workload(2000);
  const auto space = kernels::build_space("lu", w.dims);
  auto make_input = [&](const cs::Configuration& config) {
    MeasureInput input;
    input.workload = w;
    input.tiles = space.values_int(config);
    return input;
  };
  tuners::MeasureLoopOptions loop_options;
  loop_options.max_evaluations = 32;
  loop_options.batch_size = 8;

  ThreadPool pool(4);
  auto run = [&](bool parallel) {
    SwingSimDevice device(2023);
    MeasureRunnerOptions options;
    options.parallel = parallel;
    MeasureRunner runner(&device, options, &pool);
    ytopt::BayesianOptimizer bo(&space, 99);
    return tuners::run_measure_loop(bo, runner, make_input, loop_options);
  };
  const auto serial = run(false);
  const auto parallel = run(true);

  ASSERT_EQ(serial.evaluations, parallel.evaluations);
  ASSERT_EQ(serial.trials.size(), parallel.trials.size());
  for (std::size_t i = 0; i < serial.trials.size(); ++i) {
    EXPECT_TRUE(serial.trials[i].config == parallel.trials[i].config);
    EXPECT_DOUBLE_EQ(serial.trials[i].runtime_s,
                     parallel.trials[i].runtime_s);
  }
}

TEST(MeasureLoop, InvalidTrialsDoNotAbortTheLoop) {
  CpuDevice device;
  const Workload w = lu_workload(8);
  const auto space = kernels::build_space("lu", w.dims);
  std::atomic<int> proposals{0};
  auto make_input = [&](const cs::Configuration& config) {
    MeasureInput input;
    input.workload = w;
    input.tiles = space.values_int(config);
    // Every third proposed trial fails (on every one of its runs); the
    // rest succeed. Per-trial, not per-run, so warmup repeats don't
    // poison the healthy trials.
    const bool flaky = proposals.fetch_add(1) % 3 == 0;
    input.run = [flaky] {
      if (flaky) throw std::runtime_error("flaky kernel");
    };
    return input;
  };
  tuners::MeasureLoopOptions loop_options;
  loop_options.max_evaluations = 12;
  loop_options.batch_size = 4;
  MeasureRunner runner(&device);
  tuners::RandomTuner tuner(&space, 7);
  const auto out =
      tuners::run_measure_loop(tuner, runner, make_input, loop_options);
  EXPECT_EQ(out.evaluations, 12u);
  int invalid = 0;
  for (const auto& trial : out.trials) invalid += trial.valid ? 0 : 1;
  EXPECT_GT(invalid, 0);
  EXPECT_LT(invalid, 12);
}

TEST(Session, ParallelMeasurementMatchesSerialOnSwingSim) {
  // The acceptance contract: an AutotuningSession with the parallel
  // engine produces exactly the records of the serial fallback on the
  // simulated device.
  const autotvm::Task task =
      kernels::make_task("lu", kernels::Dataset::kLarge);
  auto run = [&](bool parallel) {
    SwingSimDevice device(2023);
    framework::SessionOptions options;
    options.max_evaluations = 40;
    options.measure.parallel = parallel;
    framework::AutotuningSession session(&task, &device, options);
    return session.run(framework::StrategyKind::kAutotvmRandom);
  };
  const auto serial = run(false);
  const auto parallel = run(true);
  ASSERT_EQ(serial.db.records().size(), parallel.db.records().size());
  for (std::size_t i = 0; i < serial.db.records().size(); ++i) {
    const auto& a = serial.db.records()[i];
    const auto& b = parallel.db.records()[i];
    EXPECT_EQ(a.tiles, b.tiles);
    EXPECT_DOUBLE_EQ(a.runtime_s, b.runtime_s);
    EXPECT_DOUBLE_EQ(a.elapsed_s, b.elapsed_s);
  }
  EXPECT_DOUBLE_EQ(serial.total_time_s, parallel.total_time_s);
}

}  // namespace
}  // namespace tvmbo::runtime
