// Randomized property tests ("fuzz-lite"): random schedule pipelines must
// preserve kernel semantics; random JSON/CSV documents must round-trip;
// parallel and serial Random-Forest fits must be bit-identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <sstream>
#include <thread>

#include "codegen/jit_program.h"
#include "common/csv.h"
#include "common/json.h"
#include "common/rng.h"
#include "configspace/divisors.h"
#include "framework/session.h"
#include "kernels/polybench.h"
#include "kernels/reference.h"
#include "kernels/te_programs.h"
#include "runtime/cpu_device.h"
#include "surrogate/random_forest.h"
#include "te/interp.h"
#include "te/transform.h"

namespace tvmbo {
namespace {

// --- random schedule pipelines on a matmul ----------------------------------

struct RandomScheduleCase {
  std::uint64_t seed;
};

class RandomSchedules : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSchedules, AnyLegalPipelinePreservesMatmulSemantics) {
  Rng rng(GetParam());
  const std::int64_t m = 6 + rng.uniform_int(8);   // 6..13
  const std::int64_t n = 6 + rng.uniform_int(8);
  const std::int64_t k = 4 + rng.uniform_int(8);

  te::Tensor a = te::placeholder({m, k}, "A");
  te::Tensor b = te::placeholder({k, n}, "B");
  te::IterVar kk = te::reduce_axis(k, "k");
  te::Tensor c = te::compute(
      {m, n}, "C",
      [&](const std::vector<te::Var>& i) {
        return te::sum(te::access(a, {i[0], kk->var}) *
                           te::access(b, {kk->var, i[1]}),
                       {kk->var});
      },
      {kk});

  te::Schedule sched({c});
  te::Stage& stage = sched[c];

  // Random pipeline: a few split/reorder/annotate actions on live leaves.
  const int actions = 1 + static_cast<int>(rng.uniform_int(4));
  for (int act = 0; act < actions; ++act) {
    const auto& leaves = stage.leaf_iter_vars();
    const auto pick = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(leaves.size())));
    const te::IterVar target = leaves[pick];
    switch (rng.uniform_int(3)) {
      case 0: {  // split by a random factor (dividing or not)
        const std::int64_t factor = 1 + rng.uniform_int(target->extent + 2);
        stage.split(target, factor);
        break;
      }
      case 1: {  // reorder a random shuffle of all leaves
        std::vector<te::IterVar> order = stage.leaf_iter_vars();
        rng.shuffle(order);
        stage.reorder(order);
        break;
      }
      case 2: {  // annotate (never changes interpreter semantics)
        // parallel is only legal on data axes (reductions stay serial per
        // output element — the lowering pass enforces this); split children
        // inherit the parent's kind, so the check is well-defined on leaves.
        if (rng.bernoulli(0.5) || target->kind != te::IterKind::kData) {
          stage.unroll(target);
        } else {
          stage.parallel(target);
        }
        break;
      }
    }
  }

  runtime::NDArray ma({m, k}), mb({k, n});
  kernels::init_gemm(ma, mb);
  runtime::NDArray expected({m, n});
  kernels::ref_matmul(ma, mb, expected);

  // Lower, then push through the full pass pipeline.
  te::Stmt program = te::lower(sched);
  te::validate(program);
  program = te::unroll_loops(te::simplify(program));
  te::validate(program);

  runtime::NDArray out({m, n});
  te::Interpreter interp;
  interp.bind(a, &ma);
  interp.bind(b, &mb);
  interp.bind(c, &out);
  interp.run(program);
  EXPECT_TRUE(out.allclose(expected, 1e-10))
      << "seed " << GetParam() << " (m,n,k)=(" << m << "," << n << ","
      << k << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSchedules,
                         ::testing::Range<std::uint64_t>(0, 30));

// --- random (tile x parallel-axis x thread-count) combinations --------------

// Every sampled combination must leave the closure (and, every third
// trial, the JIT) bit-identical to the serial interpreter oracle. On
// failure the assertion message is a one-line repro: re-run the same
// kernel/tiles/axis/threads by appending [axis, threads] to the tile
// vector of a TeProgramInstance.
TEST(PropertyFuzz, ParallelScheduleComboFuzz) {
  const std::vector<std::string> te_kernels = {"3mm", "gemm", "2mm",
                                               "syrk", "lu", "cholesky"};
  codegen::JitOptions jit_options;
  jit_options.cache_dir = testing::TempDir() + "tvmbo-parallel-fuzz-cache";
  const bool jit = codegen::JitProgram::toolchain_available(jit_options);
  const std::int64_t nproc = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::thread::hardware_concurrency()));

  constexpr std::uint64_t kBaseSeed = 7100;
  constexpr int kTrials = 12;
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::uint64_t seed = kBaseSeed + static_cast<std::uint64_t>(trial);
    Rng rng(seed);
    const std::string kernel = te_kernels[static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(te_kernels.size())))];
    const std::vector<std::int64_t> dims =
        kernels::polybench_dims(kernel, kernels::Dataset::kMini);
    const cs::ConfigurationSpace space = kernels::build_space(kernel, dims);
    const auto data = kernels::make_te_kernel_data(kernel, dims);

    std::vector<std::int64_t> tiles = space.values_int(space.sample(rng));
    const std::int64_t axis = rng.uniform_int(
        static_cast<std::int64_t>(kernels::te_num_parallel_axes(kernel)) + 1);
    const std::vector<std::int64_t> thread_pool = {1, 2, 3, nproc};
    const std::int64_t threads = thread_pool[static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(thread_pool.size())))];

    std::ostringstream repro;
    repro << "repro: kernel=" << kernel << " seed=" << seed << " tiles=[";
    for (std::size_t i = 0; i < tiles.size(); ++i) {
      repro << (i > 0 ? "," : "") << tiles[i];
    }
    repro << "] axis=" << axis << " threads=" << threads;

    const runtime::NDArray oracle = kernels::run_te_backend(
        data, tiles, runtime::ExecBackend::kInterp);
    std::vector<std::int64_t> extended = tiles;
    extended.push_back(axis);
    extended.push_back(threads);

    const runtime::NDArray closure = kernels::run_te_backend(
        data, extended, runtime::ExecBackend::kClosure);
    ASSERT_EQ(oracle.shape(), closure.shape()) << repro.str();
    {
      std::span<const double> ov = oracle.f64(), cv = closure.f64();
      for (std::size_t i = 0; i < ov.size(); ++i) {
        ASSERT_EQ(ov[i], cv[i])
            << repro.str() << " (closure, flat index " << i << ")";
      }
    }

    if (jit && trial % 3 == 0) {
      const runtime::NDArray jitted = kernels::run_te_backend(
          data, extended, runtime::ExecBackend::kJit, jit_options);
      ASSERT_EQ(oracle.shape(), jitted.shape()) << repro.str();
      std::span<const double> ov = oracle.f64(), jv = jitted.f64();
      for (std::size_t i = 0; i < ov.size(); ++i) {
        ASSERT_EQ(ov[i], jv[i])
            << repro.str() << " (jit, flat index " << i << ")";
      }
    }
  }
}

// --- random (tile x vectorize x unroll x pack x parallel) combinations ------

// The widened schedule tier: every sampled combination of tiles,
// parallel axis/threads, vectorize axis, unroll factor, and array
// packing must leave the closure (and, every third trial, the JIT)
// bit-identical to the serial interpreter oracle at float64. On failure
// the assertion message is a one-line repro: append
// [axis, threads, vec, unroll, pack] to the tile vector of a
// TeProgramInstance (or pass it to `tvmbo_lint --tiles`).
TEST(PropertyFuzz, VectorizeUnrollPackComboFuzz) {
  const std::vector<std::string> te_kernels = {"3mm", "gemm", "2mm",
                                               "syrk", "lu", "cholesky"};
  codegen::JitOptions jit_options;
  jit_options.cache_dir = testing::TempDir() + "tvmbo-vecpack-fuzz-cache";
  const bool jit = codegen::JitProgram::toolchain_available(jit_options);

  constexpr std::uint64_t kBaseSeed = 8200;
  constexpr int kTrials = 18;
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::uint64_t seed = kBaseSeed + static_cast<std::uint64_t>(trial);
    Rng rng(seed);
    const std::string kernel = te_kernels[static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(te_kernels.size())))];
    const std::vector<std::int64_t> dims =
        kernels::polybench_dims(kernel, kernels::Dataset::kMini);
    const cs::ConfigurationSpace space = kernels::build_space(kernel, dims);
    const auto data = kernels::make_te_kernel_data(kernel, dims);

    std::vector<std::int64_t> tiles = space.values_int(space.sample(rng));
    const std::int64_t axis = rng.uniform_int(
        static_cast<std::int64_t>(kernels::te_num_parallel_axes(kernel)) + 1);
    const std::int64_t threads = 1 + rng.uniform_int(3);  // 1..3
    const std::int64_t vec = rng.uniform_int(3);          // 0..2
    const std::vector<std::int64_t> unroll_pool = cs::unroll_factors();
    const std::int64_t unroll = unroll_pool[static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(unroll_pool.size())))];
    const std::int64_t pack = rng.uniform_int(2);  // 0..1

    std::ostringstream repro;
    repro << "repro: kernel=" << kernel << " seed=" << seed << " tiles=[";
    for (std::size_t i = 0; i < tiles.size(); ++i) {
      repro << (i > 0 ? "," : "") << tiles[i];
    }
    repro << "] axis=" << axis << " threads=" << threads << " vec=" << vec
          << " unroll=" << unroll << " pack=" << pack;

    const runtime::NDArray oracle = kernels::run_te_backend(
        data, tiles, runtime::ExecBackend::kInterp);
    std::vector<std::int64_t> extended = tiles;
    extended.insert(extended.end(), {axis, threads, vec, unroll, pack});

    const runtime::NDArray closure = kernels::run_te_backend(
        data, extended, runtime::ExecBackend::kClosure);
    ASSERT_EQ(oracle.shape(), closure.shape()) << repro.str();
    {
      std::span<const double> ov = oracle.f64(), cv = closure.f64();
      for (std::size_t i = 0; i < ov.size(); ++i) {
        ASSERT_EQ(ov[i], cv[i])
            << repro.str() << " (closure, flat index " << i << ")";
      }
    }

    if (jit && trial % 3 == 0) {
      const runtime::NDArray jitted = kernels::run_te_backend(
          data, extended, runtime::ExecBackend::kJit, jit_options);
      ASSERT_EQ(oracle.shape(), jitted.shape()) << repro.str();
      std::span<const double> ov = oracle.f64(), jv = jitted.f64();
      for (std::size_t i = 0; i < ov.size(); ++i) {
        ASSERT_EQ(ov[i], jv[i])
            << repro.str() << " (jit, flat index " << i << ")";
      }
    }
  }
}

// Trajectory identity, space level: with the vectorize/unroll/pack knobs
// disabled, the knob-aware space must be indistinguishable from the
// pre-existing spaces — same parameters, same cardinality, and the same
// fixed-seed sample stream — so existing tuning trajectories replay
// unchanged.
TEST(PropertyFuzz, DisabledKnobsPreserveSpaceAndSampleStreams) {
  const std::vector<std::string> te_kernels = {"3mm", "gemm", "2mm",
                                               "syrk", "lu", "cholesky"};
  for (const std::string& kernel : te_kernels) {
    const std::vector<std::int64_t> dims =
        kernels::polybench_dims(kernel, kernels::Dataset::kMini);

    // All knobs off: byte-identical to the base (tiles-only) space.
    const cs::ConfigurationSpace base = kernels::build_space(kernel, dims);
    kernels::ScheduleKnobs off;
    const cs::ConfigurationSpace knob_off =
        kernels::build_space(kernel, dims, off);
    ASSERT_EQ(base.num_params(), knob_off.num_params()) << kernel;
    for (std::size_t p = 0; p < base.num_params(); ++p) {
      EXPECT_EQ(base.param(p).name(), knob_off.param(p).name()) << kernel;
    }
    EXPECT_EQ(base.cardinality(), knob_off.cardinality()) << kernel;
    Rng ra(4242), rb(4242);
    for (int draw = 0; draw < 32; ++draw) {
      EXPECT_EQ(base.values_int(base.sample(ra)),
                knob_off.values_int(knob_off.sample(rb)))
          << kernel << " draw " << draw;
    }

    // Parallel tier only: exactly the two parallel knobs are appended and
    // none of the new P_vec/P_unroll/P_pack parameters appear.
    kernels::ScheduleKnobs par_only;
    par_only.enabled = true;
    par_only.max_threads = 4;
    const cs::ConfigurationSpace par_space =
        kernels::build_space(kernel, dims, par_only);
    ASSERT_EQ(par_space.num_params(), base.num_params() + 2u) << kernel;
    for (std::size_t p = 0; p < par_space.num_params(); ++p) {
      const std::string& name = par_space.param(p).name();
      EXPECT_NE(name, "P_vec") << kernel;
      EXPECT_NE(name, "P_unroll") << kernel;
      EXPECT_NE(name, "P_pack") << kernel;
    }

    // Fully widened: five knobs appended, in the documented order.
    kernels::ScheduleKnobs wide = par_only;
    wide.vectorize = wide.unroll = wide.pack = true;
    const cs::ConfigurationSpace wide_space =
        kernels::build_space(kernel, dims, wide);
    ASSERT_EQ(wide_space.num_params(), base.num_params() + 5u) << kernel;
    EXPECT_EQ(wide_space.param(base.num_params() + 2).name(), "P_vec");
    EXPECT_EQ(wide_space.param(base.num_params() + 3).name(), "P_unroll");
    EXPECT_EQ(wide_space.param(base.num_params() + 4).name(), "P_pack");
  }
}

// Trajectory identity, session level: a fixed-seed tuning session over a
// task built through the knob-aware make_task overload with every new
// knob disabled proposes the exact same configuration sequence as one
// built through the plain backend overload.
TEST(PropertyFuzz, FixedSeedSessionTrajectoryIdenticalWithKnobsDisabled) {
  codegen::JitOptions jit_options;
  const autotvm::Task plain = kernels::make_task(
      "gemm", kernels::Dataset::kMini, runtime::ExecBackend::kClosure,
      jit_options);
  const autotvm::Task knob_off = kernels::make_task(
      "gemm", kernels::Dataset::kMini, runtime::ExecBackend::kClosure,
      jit_options, kernels::ScheduleKnobs{});

  runtime::CpuDevice device;
  framework::SessionOptions options;
  options.max_evaluations = 4;
  options.seed = 99;
  options.charge_strategy_overhead = false;

  auto tile_sequence = [&](const autotvm::Task& task) {
    framework::AutotuningSession session(&task, &device, options);
    const framework::SessionResult result =
        session.run(framework::StrategyKind::kAutotvmRandom);
    EXPECT_EQ(result.evaluations, options.max_evaluations);
    std::vector<std::vector<std::int64_t>> sequence;
    for (const auto& record : result.db.records()) {
      EXPECT_TRUE(record.valid);
      sequence.push_back(record.tiles);
    }
    return sequence;
  };

  EXPECT_EQ(tile_sequence(plain), tile_sequence(knob_off));
}

// --- serialization round trips ----------------------------------------------

Json random_json(Rng& rng, int depth) {
  const std::int64_t kind = rng.uniform_int(depth > 2 ? 4 : 6);
  switch (kind) {
    case 0: return Json(nullptr);
    case 1: return Json(rng.bernoulli(0.5));
    case 2:
      return Json(rng.bernoulli(0.3)
                      ? static_cast<double>(rng.uniform_int(-1000, 1000))
                      : rng.uniform(-1e6, 1e6));
    case 3: {
      std::string text;
      const std::int64_t length = rng.uniform_int(12);
      for (std::int64_t i = 0; i < length; ++i) {
        // Mix printable ASCII with characters that need escaping.
        const char pool[] = "abcXYZ019 ,\"\\\n\t{}[]";
        text.push_back(pool[rng.uniform_int(sizeof(pool) - 1)]);
      }
      return Json(text);
    }
    case 4: {
      Json array = Json::array();
      const std::int64_t size = rng.uniform_int(5);
      for (std::int64_t i = 0; i < size; ++i) {
        array.push_back(random_json(rng, depth + 1));
      }
      return array;
    }
    default: {
      Json object = Json::object();
      const std::int64_t size = rng.uniform_int(5);
      for (std::int64_t i = 0; i < size; ++i) {
        object.set("k" + std::to_string(i), random_json(rng, depth + 1));
      }
      return object;
    }
  }
}

TEST(PropertyFuzz, JsonRoundTripsRandomDocuments) {
  Rng rng(404);
  for (int i = 0; i < 300; ++i) {
    const Json document = random_json(rng, 0);
    EXPECT_EQ(Json::parse(document.dump()), document) << document.dump();
    EXPECT_EQ(Json::parse(document.dump_pretty()), document);
  }
}

TEST(PropertyFuzz, CsvRoundTripsRandomTables) {
  Rng rng(505);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t columns =
        1 + static_cast<std::size_t>(rng.uniform_int(5));
    std::vector<std::string> header;
    for (std::size_t c = 0; c < columns; ++c) {
      header.push_back("col" + std::to_string(c));
    }
    CsvTable table(header);
    const std::int64_t rows = rng.uniform_int(6);
    for (std::int64_t r = 0; r < rows; ++r) {
      std::vector<std::string> row;
      for (std::size_t c = 0; c < columns; ++c) {
        std::string cell;
        const std::int64_t length = rng.uniform_int(8);
        for (std::int64_t i = 0; i < length; ++i) {
          const char pool[] = "ab1 ,\"\n";
          cell.push_back(pool[rng.uniform_int(sizeof(pool) - 1)]);
        }
        row.push_back(std::move(cell));
      }
      table.add_row(row);
    }
    const CsvTable parsed = CsvTable::parse(table.to_string());
    ASSERT_EQ(parsed.num_rows(), table.num_rows()) << trial;
    for (std::size_t r = 0; r < table.num_rows(); ++r) {
      EXPECT_EQ(parsed.row(r), table.row(r)) << trial;
    }
  }
}

// --- parallel determinism ----------------------------------------------------

TEST(PropertyFuzz, ParallelForestFitIsBitIdenticalToSerial) {
  Rng data_rng(606);
  surrogate::Dataset data;
  for (int i = 0; i < 120; ++i) {
    const double x0 = data_rng.uniform(), x1 = data_rng.uniform();
    data.add({x0, x1}, x0 * x0 + 0.3 * x1 + data_rng.normal(0.0, 0.01));
  }
  surrogate::ForestOptions serial_options;
  serial_options.num_trees = 24;
  surrogate::ForestOptions parallel_options = serial_options;
  parallel_options.parallel_fit = true;

  surrogate::RandomForest serial(serial_options);
  surrogate::RandomForest parallel(parallel_options);
  Rng ra(7), rb(7);
  serial.fit(data, ra);
  parallel.fit(data, rb);

  Rng probe(8);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x{probe.uniform(), probe.uniform()};
    const auto ps = serial.predict_with_std(x);
    const auto pp = parallel.predict_with_std(x);
    EXPECT_DOUBLE_EQ(ps.mean, pp.mean);
    EXPECT_DOUBLE_EQ(ps.std, pp.std);
  }
}

}  // namespace
}  // namespace tvmbo
