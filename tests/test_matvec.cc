// Matrix-vector kernels (atax, bicg, mvt): references vs tiled native vs
// TE, plus space/simulator/task wiring. These exercise reduction-axis
// tiling, which the matmul kernels' schedules don't.
#include <gtest/gtest.h>

#include "configspace/divisors.h"
#include "kernels/matvec.h"
#include "kernels/polybench.h"
#include "framework/session.h"
#include "runtime/swing_sim.h"
#include "te/compile.h"
#include "te/interp.h"

namespace tvmbo::kernels {
namespace {

using runtime::NDArray;

TEST(Atax, ReferenceMatchesManualComposition) {
  const std::int64_t m = 7, n = 9;
  NDArray a({m, n}), x({n}), tmp({m}), y({n});
  init_atax(a, x);
  ref_atax(a, x, tmp, y);
  // y[j] = sum_i A[i,j] * (sum_k A[i,k] x[k])
  for (std::int64_t j = 0; j < n; ++j) {
    double expected = 0.0;
    for (std::int64_t i = 0; i < m; ++i) {
      double inner = 0.0;
      for (std::int64_t k = 0; k < n; ++k) {
        inner += a.at2(i, k) * x.f64()[static_cast<std::size_t>(k)];
      }
      expected += a.at2(i, j) * inner;
    }
    EXPECT_NEAR(y.f64()[static_cast<std::size_t>(j)], expected, 1e-10);
  }
}

class MatvecTileSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MatvecTileSweep, AtaxTiledMatchesReference) {
  const auto [ti, tj] = GetParam();
  const std::int64_t m = 19, n = 23;
  NDArray a({m, n}), x({n});
  init_atax(a, x);
  NDArray tmp_ref({m}), y_ref({n}), tmp_tiled({m}), y_tiled({n});
  ref_atax(a, x, tmp_ref, y_ref);
  atax_tiled(a, x, tmp_tiled, y_tiled, ti, tj);
  EXPECT_TRUE(y_tiled.allclose(y_ref, 1e-10)) << "ti=" << ti << " tj=" << tj;
}

TEST_P(MatvecTileSweep, BicgTiledMatchesReference) {
  const auto [ti, tj] = GetParam();
  const std::int64_t n = 21, m = 17;
  NDArray a({n, m}), p({m}), r({n});
  init_bicg(a, p, r);
  NDArray s_ref({m}), q_ref({n}), s_tiled({m}), q_tiled({n});
  ref_bicg(a, p, r, s_ref, q_ref);
  bicg_tiled(a, p, r, s_tiled, q_tiled, ti, tj);
  EXPECT_TRUE(s_tiled.allclose(s_ref, 1e-10)) << "ti=" << ti << " tj=" << tj;
  EXPECT_TRUE(q_tiled.allclose(q_ref, 1e-10));
}

TEST_P(MatvecTileSweep, MvtTiledMatchesReference) {
  const auto [ti, tj] = GetParam();
  const std::int64_t n = 18;
  NDArray a({n, n}), x1({n}), x2({n}), y1({n}), y2({n});
  init_mvt(a, x1, x2, y1, y2);
  NDArray x1_ref = x1, x2_ref = x2;
  ref_mvt(a, x1_ref, x2_ref, y1, y2);
  mvt_tiled(a, x1, x2, y1, y2, ti, tj);
  EXPECT_TRUE(x1.allclose(x1_ref, 1e-10)) << "ti=" << ti << " tj=" << tj;
  EXPECT_TRUE(x2.allclose(x2_ref, 1e-10));
}

INSTANTIATE_TEST_SUITE_P(
    Tiles, MatvecTileSweep,
    ::testing::Values(std::pair<int, int>{1, 1}, std::pair<int, int>{4, 6},
                      std::pair<int, int>{5, 5},
                      std::pair<int, int>{64, 64},
                      std::pair<int, int>{3, 11},
                      std::pair<int, int>{7, 2}));

TEST(Atax, TeScheduleWithReductionSplitMatchesReference) {
  const std::int64_t m = 10, n = 12;
  AtaxTensors t = make_atax(m, n);
  NDArray a({m, n}), x({n});
  init_atax(a, x);
  NDArray tmp_ref({m}), y_ref({n});
  ref_atax(a, x, tmp_ref, y_ref);

  for (const auto [ti, tj] : {std::pair<std::int64_t, std::int64_t>{2, 3},
                              {5, 4},
                              {10, 12},
                              {3, 7}}) {
    te::Schedule sched = schedule_atax(t, ti, tj);
    NDArray y({n});
    te::run_schedule(sched, {{t.A, &a}, {t.X, &x}, {t.Y, &y}});
    EXPECT_TRUE(y.allclose(y_ref, 1e-10)) << "ti=" << ti << " tj=" << tj;
  }
}

TEST(Atax, CompiledBackendAgrees) {
  const std::int64_t m = 10, n = 12;
  AtaxTensors t = make_atax(m, n);
  NDArray a({m, n}), x({n});
  init_atax(a, x);
  NDArray tmp_ref({m}), y_ref({n});
  ref_atax(a, x, tmp_ref, y_ref);
  te::Schedule sched = schedule_atax(t, 4, 5);
  NDArray y({n});
  te::CompiledProgram::compile(te::lower(sched),
                               {{t.A, &a}, {t.X, &x}, {t.Y, &y}})
      .run();
  EXPECT_TRUE(y.allclose(y_ref, 1e-10));
}

TEST(Matvec, SpacesAndWorkloads) {
  const auto atax_dims = polybench_dims("atax", Dataset::kLarge);
  EXPECT_EQ(atax_dims, (std::vector<std::int64_t>{1900, 2100}));
  const auto space = build_space("atax", atax_dims);
  EXPECT_EQ(space.cardinality(),
            cs::divisor_count(1900) * cs::divisor_count(2100));
  EXPECT_DOUBLE_EQ(make_workload("mvt", Dataset::kLarge).flops,
                   4.0 * 2000 * 2000);
}

TEST(Matvec, SimulatedSurfacesRespondToTiles) {
  runtime::SwingSimDevice device;
  for (const char* kernel : {"atax", "bicg", "mvt"}) {
    const auto workload = make_workload(kernel, Dataset::kLarge);
    const std::int64_t good[2] = {4, 96};
    const std::int64_t bad[2] = {workload.dims[0], 1};
    EXPECT_LT(device.surface_runtime(workload, good),
              device.surface_runtime(workload, bad))
        << kernel;
  }
}

TEST(Matvec, MatvecCheaperThanFactorizationAtSameN) {
  // 4*N^2 flops vs ~2/3*N^3: mvt must be far cheaper than LU at N=2000.
  runtime::SwingSimDevice device;
  const std::int64_t tiles[2] = {8, 96};
  EXPECT_LT(device.model_runtime(make_workload("mvt", Dataset::kLarge),
                                 tiles) *
                20.0,
            device.model_runtime(make_workload("lu", Dataset::kLarge),
                                 tiles));
}

TEST(Matvec, ExecutableTasksRunOnCpu) {
  for (const char* kernel : {"atax", "mvt"}) {
    autotvm::Task task =
        make_task(kernel, "mini", polybench_dims(kernel, Dataset::kMini),
                  /*executable=*/true);
    cs::Configuration config =
        task.config.space().default_configuration();
    config.set_index(0, 1);
    const auto input = task.measure_input(config);
    ASSERT_TRUE(static_cast<bool>(input.run)) << kernel;
    input.run();  // must not throw
  }
}

TEST(Matvec, FullSessionOnAtax) {
  const autotvm::Task task = make_task("atax", Dataset::kLarge);
  runtime::SwingSimDevice device(3);
  framework::SessionOptions options;
  options.max_evaluations = 40;
  framework::AutotuningSession session(&task, &device, options);
  const auto result = session.run(framework::StrategyKind::kYtopt);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(result.evaluations, 40u);
  EXPECT_GT(result.best->runtime_s, 0.0);
}

}  // namespace
}  // namespace tvmbo::kernels
