// Failure injection: real autotuning runs see failed measurements
// (compile errors, timeouts, crashed runs). These tests wrap the
// simulated device in a fault injector and assert that every search
// strategy keeps making progress and never crowns an invalid result.
#include <gtest/gtest.h>

#include "framework/session.h"
#include "kernels/polybench.h"
#include "runtime/swing_sim.h"

namespace tvmbo {
namespace {

/// Decorator device: fails a deterministic fraction of measurements.
class FlakyDevice final : public runtime::Device {
 public:
  FlakyDevice(runtime::Device* inner, double failure_rate,
              std::uint64_t seed)
      : inner_(inner), failure_rate_(failure_rate), rng_(seed) {}

  std::string name() const override { return "flaky(" + inner_->name() + ")"; }

  runtime::MeasureResult measure(
      const runtime::MeasureInput& input,
      const runtime::MeasureOption& option) override {
    ++measurements_;
    if (rng_.bernoulli(failure_rate_)) {
      ++failures_;
      runtime::MeasureResult result;
      result.valid = false;
      result.error = "injected failure";
      // A failed build still burns builder time.
      result.compile_s = 1.0;
      return result;
    }
    return inner_->measure(input, option);
  }

  int measurements() const { return measurements_; }
  int failures() const { return failures_; }

 private:
  runtime::Device* inner_;
  double failure_rate_;
  Rng rng_;
  int measurements_ = 0;
  int failures_ = 0;
};

framework::SessionOptions fast_options() {
  framework::SessionOptions options;
  options.max_evaluations = 60;
  options.seed = 3;
  return options;
}

TEST(FailureInjection, AllStrategiesSurviveThirtyPercentFailures) {
  const autotvm::Task task =
      kernels::make_task("lu", kernels::Dataset::kLarge);
  for (framework::StrategyKind kind : framework::all_strategies()) {
    runtime::SwingSimDevice inner(5);
    FlakyDevice device(&inner, 0.30, 7);
    framework::AutotuningSession session(&task, &device, fast_options());
    const auto result = session.run(kind);
    ASSERT_TRUE(result.best.has_value())
        << framework::strategy_name(kind);
    EXPECT_TRUE(result.best->valid);
    EXPECT_GT(device.failures(), 0);
    // A valid best still lands in a sane runtime range.
    EXPECT_LT(result.best->runtime_s, 20.0);
  }
}

TEST(FailureInjection, InvalidTrialsNeverBecomeBest) {
  const autotvm::Task task =
      kernels::make_task("cholesky", kernels::Dataset::kLarge);
  runtime::SwingSimDevice inner(11);
  FlakyDevice device(&inner, 0.5, 13);
  framework::AutotuningSession session(&task, &device, fast_options());
  const auto result = session.run(framework::StrategyKind::kYtopt);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_TRUE(result.best->valid);
  int invalid = 0;
  for (const auto& record : result.db.records()) {
    if (!record.valid) ++invalid;
  }
  EXPECT_GT(invalid, 10);  // the injector really fired
}

TEST(FailureInjection, TotalFailureYieldsNoBest) {
  const autotvm::Task task =
      kernels::make_task("lu", kernels::Dataset::kLarge);
  runtime::SwingSimDevice inner(17);
  FlakyDevice device(&inner, 1.0, 19);
  framework::AutotuningSession session(&task, &device, fast_options());
  const auto result = session.run(framework::StrategyKind::kAutotvmRandom);
  EXPECT_FALSE(result.best.has_value());
  EXPECT_EQ(result.evaluations, 60u);  // it still ran the budget
}

TEST(FailureInjection, BoSurrogateToleratesFailuresInHistory) {
  // The BO refit imputes penalties for failed points; search quality
  // should degrade gracefully, not collapse.
  const autotvm::Task task =
      kernels::make_task("lu", kernels::Dataset::kLarge);
  runtime::SwingSimDevice clean_inner(23);
  framework::SessionOptions options = fast_options();
  options.max_evaluations = 80;

  FlakyDevice flaky(&clean_inner, 0.25, 29);
  framework::AutotuningSession flaky_session(&task, &flaky, options);
  const auto flaky_result =
      flaky_session.run(framework::StrategyKind::kYtopt);

  runtime::SwingSimDevice clean(23);
  framework::AutotuningSession clean_session(&task, &clean, options);
  const auto clean_result =
      clean_session.run(framework::StrategyKind::kYtopt);

  ASSERT_TRUE(flaky_result.best.has_value());
  // Within 25% of the failure-free run's best despite losing a quarter of
  // all measurements.
  EXPECT_LT(flaky_result.best->runtime_s,
            clean_result.best->runtime_s * 1.25);
}

TEST(FailureInjection, ProcessClockStillChargesFailedBuilds) {
  const autotvm::Task task =
      kernels::make_task("lu", kernels::Dataset::kLarge);
  runtime::SwingSimDevice inner(31);
  FlakyDevice device(&inner, 1.0, 37);
  framework::AutotuningSession session(&task, &device, fast_options());
  const auto result = session.run(framework::StrategyKind::kAutotvmGa);
  EXPECT_GT(result.total_time_s, 0.0);
}

}  // namespace
}  // namespace tvmbo
