#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace tvmbo {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleThreadFallback) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(8, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  // Single-threaded pools run inline, in order.
  std::vector<int> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins; all enqueued tasks must have run
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Regression: parallel_for from inside a worker used to enqueue tasks
  // and block in future.get(); with every worker doing the same, no one
  // was left to drain the queue. Nested calls now run inline.
  ThreadPool pool(2);
  std::atomic<int> inner_hits{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { inner_hits.fetch_add(1); });
  });
  EXPECT_EQ(inner_hits.load(), 32);
}

TEST(ThreadPool, NestedSubmitParallelForCompletes) {
  ThreadPool pool(2);
  auto future = pool.submit([&pool] {
    int sum = 0;
    std::mutex m;
    pool.parallel_for(16, [&](std::size_t i) {
      std::lock_guard<std::mutex> lock(m);
      sum += static_cast<int>(i);
    });
    return sum;
  });
  EXPECT_EQ(future.get(), 120);
}

TEST(ThreadPool, ParallelForChunksCoverLargeCounts) {
  // Work is chunked per thread (not one task per item): the queue must
  // not see 10k entries, and every index still runs exactly once.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForStillPropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i == 13) {
                                     throw std::runtime_error("chunk boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForChunksCoversRangeWithBoundedChunks) {
  ThreadPool pool(4);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  std::vector<std::atomic<int>> hits(103);  // not a multiple of any chunking
  pool.parallel_for_chunks(hits.size(), 3,
                           [&](std::size_t begin, std::size_t end) {
                             {
                               std::lock_guard<std::mutex> lock(m);
                               chunks.emplace_back(begin, end);
                             }
                             for (std::size_t i = begin; i < end; ++i) {
                               hits[i].fetch_add(1);
                             }
                           });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
  // max_chunks caps the fan-out and chunks tile the range exactly.
  EXPECT_LE(chunks.size(), 3u);
  std::size_t covered = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_LT(begin, end);
    covered += end - begin;
  }
  EXPECT_EQ(covered, hits.size());
}

TEST(ThreadPool, ParallelForChunksRunsInlineInsideWorker) {
  // Chunked dispatch from a worker thread must fall back to a single
  // inline chunk — same deadlock-avoidance contract as parallel_for.
  ThreadPool pool(2);
  auto future = pool.submit([&pool] {
    int calls = 0;
    std::size_t total = 0;
    pool.parallel_for_chunks(32, 0, [&](std::size_t begin, std::size_t end) {
      ++calls;
      total += end - begin;
    });
    return std::make_pair(calls, total);
  });
  const auto [calls, total] = future.get();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(total, 32u);
}

TEST(ThreadPool, ParallelForChunksPropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for_chunks(64, 0,
                               [](std::size_t begin, std::size_t) {
                                 if (begin > 0) {
                                   throw std::runtime_error("chunk boom");
                                 }
                               }),
      std::runtime_error);
}

TEST(ThreadPool, InWorkerThreadDetection) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.in_worker_thread());
  auto future = pool.submit([&pool] { return pool.in_worker_thread(); });
  EXPECT_TRUE(future.get());
}

TEST(ThreadPool, DefaultPoolIsSingleton) {
  EXPECT_EQ(&default_thread_pool(), &default_thread_pool());
  EXPECT_GE(default_thread_pool().num_threads(), 1u);
}

}  // namespace
}  // namespace tvmbo
