// Tuning-as-a-service (serve): scheduler multiplexing, fair share,
// admission control, cancellation, crash/resize resilience, the socket
// server, and the solo-job determinism contract against the async proc
// measurement path.
//
// Like the proc-runner suite, these tests spawn real tvmbo_worker
// processes and are skipped when the binary cannot be found.
#include "serve/scheduler.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "distd/fault_kernels.h"
#include "distd/proc_device.h"
#include "framework/session.h"
#include "kernels/polybench.h"
#include "runtime/trace_log.h"
#include "serve/client.h"
#include "serve/server.h"

namespace tvmbo::serve {
namespace {

bool worker_binary_available() {
  const std::string binary = distd::resolve_worker_binary("");
  if (binary.find('/') == std::string::npos) return false;
  return ::access(binary.c_str(), X_OK) == 0;
}

#define SKIP_WITHOUT_WORKER()                                        \
  do {                                                               \
    if (!worker_binary_available())                                  \
      GTEST_SKIP() << "tvmbo_worker binary not found; build the "    \
                      "tools targets first";                         \
  } while (0)

SchedulerOptions fast_options(std::size_t workers,
                              runtime::TraceLog* trace = nullptr) {
  SchedulerOptions options;
  options.pool.num_workers = workers;
  options.pool.heartbeat_ms = 100;
  options.pool.max_respawn_backoff_ms = 200;
  options.trace = trace;
  return options;
}

JobSpec gemm_spec(std::size_t budget, std::uint64_t seed,
                  const std::string& tenant = "default") {
  JobSpec spec;
  spec.tenant = tenant;
  spec.kernel = "gemm";
  spec.size = "mini";
  spec.strategy = "random";
  spec.budget = budget;
  spec.seed = seed;
  return spec;
}

/// Armed fault job: every trial faults (nthreads != 1 arms the
/// single-candidate fault space). fault.spin runs until kill_leased.
JobSpec fault_spec(const std::string& kernel, std::size_t budget,
                   const std::string& tenant = "default") {
  JobSpec spec;
  spec.tenant = tenant;
  spec.kernel = kernel;
  spec.budget = budget;
  spec.nthreads = 2;
  return spec;
}

/// Thread-safe event collector usable as a job's EventSink.
class EventLog {
 public:
  Scheduler::EventSink sink() {
    return [this](const Json& frame) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        events_.push_back(frame);
        if (frame.contains("event") &&
            is_terminal_event(frame.at("event").as_string())) {
          terminal_ = true;
        }
      }
      cv_.notify_all();
    };
  }

  bool wait_terminal(int timeout_s = 60) {
    std::unique_lock<std::mutex> lock(mutex_);
    return cv_.wait_for(lock, std::chrono::seconds(timeout_s),
                        [&] { return terminal_; });
  }

  /// Blocks until an event with this name has arrived.
  bool wait_event(const std::string& name, int timeout_s = 60) {
    std::unique_lock<std::mutex> lock(mutex_);
    return cv_.wait_for(lock, std::chrono::seconds(timeout_s), [&] {
      return count_locked(name) > 0;
    });
  }

  std::size_t count(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_locked(name);
  }

  std::vector<Json> events() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
  }

  /// Tiles of every job_trial event, in arrival (completion) order.
  std::vector<std::vector<std::int64_t>> trial_tiles() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::vector<std::int64_t>> out;
    for (const Json& event : events_) {
      if (!event.contains("event") ||
          event.at("event").as_string() != "job_trial") {
        continue;
      }
      std::vector<std::int64_t> tiles;
      for (const Json& t : event.at("tiles").as_array()) {
        tiles.push_back(t.as_int());
      }
      out.push_back(std::move(tiles));
    }
    return out;
  }

 private:
  std::size_t count_locked(const std::string& name) const {
    std::size_t n = 0;
    for (const Json& event : events_) {
      if (event.contains("event") && event.at("event").as_string() == name) {
        ++n;
      }
    }
    return n;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Json> events_;
  bool terminal_ = false;
};

// --- Determinism: the tentpole's reproducibility contract -----------------

/// A fixed-seed solo job on a one-worker daemon must visit the identical
/// configuration sequence as the same strategy under the async proc
/// measurement path (`tvmbo_tune --runner proc --async`): both drive
/// strict ask/measure/tell alternation through one AskTellSession over
/// the same space with the same derived seed.
TEST(Serve, SoloJobReproducesAsyncProcTrajectory) {
  SKIP_WITHOUT_WORKER();
  constexpr std::size_t kBudget = 8;
  constexpr std::uint64_t kSeed = 2023;

  EventLog log;
  {
    Scheduler scheduler(fast_options(1));
    const auto result = scheduler.submit(gemm_spec(kBudget, kSeed),
                                         log.sink());
    ASSERT_TRUE(result.ok()) << result.message;
    ASSERT_TRUE(log.wait_terminal());
  }
  const auto serve_tiles = log.trial_tiles();
  ASSERT_EQ(serve_tiles.size(), kBudget);

  const autotvm::Task task = kernels::make_task(
      "gemm", kernels::Dataset::kMini, /*executable=*/true);
  framework::SessionOptions session_options;
  session_options.max_evaluations = kBudget;
  session_options.seed = kSeed;
  session_options.async = true;

  distd::ProcDeviceOptions proc_options;
  proc_options.pool.num_workers = 1;
  proc_options.pool.heartbeat_ms = 100;
  distd::ProcDevice device(proc_options);
  framework::AutotuningSession session(&task, &device, session_options);
  const framework::SessionResult reference =
      session.run(framework::StrategyKind::kAutotvmRandom);

  ASSERT_EQ(reference.db.size(), kBudget);
  for (std::size_t i = 0; i < kBudget; ++i) {
    EXPECT_EQ(serve_tiles[i], reference.db.record(i).tiles)
        << "evaluation " << i << " diverged from the async proc loop";
  }
}

// --- Instant-config lookup ------------------------------------------------

/// config_lookup is the read-only fast path: once a job has measured a
/// workload, the scheduler answers queries for it from the in-memory
/// cache without dispatching any measurement — the trace gains
/// config_lookup events but not a single new job_dispatch.
TEST(Serve, LookupAnswersFromCacheWithoutDispatching) {
  SKIP_WITHOUT_WORKER();
  constexpr std::size_t kBudget = 8;
  std::ostringstream trace_out;
  runtime::TraceLog trace(&trace_out);

  Scheduler scheduler(fast_options(1, &trace));
  EXPECT_EQ(scheduler.lookup_cache_size(), 0u);

  EventLog log;
  const auto result =
      scheduler.submit(gemm_spec(kBudget, 2023), log.sink());
  ASSERT_TRUE(result.ok()) << result.message;
  ASSERT_TRUE(log.wait_terminal());
  // The job's completions fed the cache (best-per-workload keys).
  EXPECT_GT(scheduler.lookup_cache_size(), 0u);

  const auto count_events = [&](const std::string& name) {
    std::istringstream replay(trace_out.str());
    std::string line;
    std::size_t n = 0;
    while (std::getline(replay, line)) {
      const Json event = Json::parse(line);
      if (event.at("event").as_string() == name) ++n;
    }
    return n;
  };
  const std::size_t dispatches_before = count_events("job_dispatch");
  ASSERT_GT(dispatches_before, 0u);

  LookupSpec spec;
  spec.kernel = "gemm";
  spec.size = "mini";
  spec.nthreads = 1;
  spec.topk = 1;
  for (int i = 0; i < 3; ++i) {
    const Json reply = scheduler.lookup(spec);
    ASSERT_EQ(reply.at("type").as_string(), "lookup_reply");
    EXPECT_EQ(reply.at("source").as_string(), "cache");
    ASSERT_EQ(reply.at("configs").as_array().size(), 1u);
    EXPECT_GT(reply.at("configs").as_array()[0].at("runtime_s").as_double(),
              0.0);
  }
  // A workload nobody measured (and no model loaded): an honest "none".
  spec.kernel = "cholesky";
  EXPECT_EQ(scheduler.lookup(spec).at("source").as_string(), "none");
  // An unknown kernel: a typed error frame, not a dropped connection.
  spec.kernel = "nope";
  EXPECT_EQ(scheduler.lookup(spec).at("type").as_string(), "error");

  EXPECT_EQ(count_events("job_dispatch"), dispatches_before)
      << "config_lookup must never dispatch a measurement";
  EXPECT_EQ(count_events("config_lookup"), 5u);
}

// --- Multiplexing and fair share ------------------------------------------

TEST(Serve, ThreeConcurrentJobsShareFourWorkers) {
  SKIP_WITHOUT_WORKER();
  // gemm/mini's space has 18 configurations; stay under it so the jobs
  // finish by budget, not by space exhaustion.
  constexpr std::size_t kBudget = 15;
  std::ostringstream trace_out;
  runtime::TraceLog trace(&trace_out);

  Scheduler scheduler(fast_options(4, &trace));
  EventLog logs[3];
  std::uint64_t ids[3];
  const char* tenants[3] = {"alice", "bob", "carol"};
  for (int i = 0; i < 3; ++i) {
    const auto result = scheduler.submit(
        gemm_spec(kBudget, 100 + static_cast<std::uint64_t>(i), tenants[i]),
        logs[i].sink());
    ASSERT_TRUE(result.ok()) << result.message;
    ids[i] = result.job;
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(logs[i].wait_terminal()) << "job " << ids[i] << " stuck";
    EXPECT_EQ(logs[i].count("job_complete"), 1u);
    EXPECT_EQ(logs[i].count("job_trial"), kBudget);
  }

  // Deficit fair share: equal workloads + equal budgets must consume
  // comparable slot time (generous bound — trial runtimes are microseconds
  // and CI timing is noisy, but systematic starvation would blow way
  // past it).
  std::vector<double> seconds;
  for (int i = 0; i < 3; ++i) {
    const auto status = scheduler.status(ids[i]);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, JobState::kDone);
    EXPECT_EQ(status->completed, kBudget);
    seconds.push_back(status->slot_seconds);
  }
  const double lo = *std::min_element(seconds.begin(), seconds.end());
  const double hi = *std::max_element(seconds.begin(), seconds.end());
  EXPECT_GT(lo, 0.0);
  EXPECT_LT(hi, lo * 3.0) << "fair share skew: " << lo << " vs " << hi;

  // Trace-verify slot saturation: replaying job_dispatch vs job_trial in
  // order, at least four dispatches must be outstanding at some point —
  // 3 runnable jobs never leave the fleet partially idle. (The count can
  // transiently exceed the fleet size: a slot is released before its
  // completion event is recorded, so the successor dispatch may appear
  // first in the trace.)
  std::istringstream replay(trace_out.str());
  std::string line;
  int in_flight = 0;
  int max_in_flight = 0;
  while (std::getline(replay, line)) {
    const Json event = Json::parse(line);
    const std::string name = event.at("event").as_string();
    if (name == "job_dispatch") {
      max_in_flight = std::max(max_in_flight, ++in_flight);
    } else if (name == "job_trial") {
      --in_flight;
    }
  }
  EXPECT_GE(max_in_flight, 4);
}

// --- Admission control ----------------------------------------------------

TEST(Serve, QuotaAndQueueRejectionsAreTyped) {
  SKIP_WITHOUT_WORKER();
  SchedulerOptions options = fast_options(1);
  options.max_jobs_per_tenant = 1;
  options.max_active_jobs = 2;
  options.max_budget = 50;
  Scheduler scheduler(options);

  EventLog log_a;
  const auto a = scheduler.submit(fault_spec("fault.spin", 1, "alice"),
                                  log_a.sink());
  ASSERT_TRUE(a.ok()) << a.message;

  const auto a2 = scheduler.submit(gemm_spec(5, 1, "alice"), nullptr);
  EXPECT_EQ(a2.error_code, "quota_exceeded");

  EventLog log_b;
  const auto b = scheduler.submit(gemm_spec(5, 1, "bob"), log_b.sink());
  ASSERT_TRUE(b.ok()) << b.message;

  const auto c = scheduler.submit(gemm_spec(5, 1, "carol"), nullptr);
  EXPECT_EQ(c.error_code, "queue_full");

  const auto big = scheduler.submit(gemm_spec(51, 1, "dave"), nullptr);
  EXPECT_EQ(big.error_code, "bad_request");

  JobSpec nonsense = gemm_spec(5, 1, "dave");
  nonsense.strategy = "simulated-annealing";
  EXPECT_EQ(scheduler.submit(nonsense, nullptr).error_code, "bad_request");

  // Cancelling alice's spinner frees her quota slot immediately.
  ASSERT_TRUE(scheduler.cancel(a.job, "test"));
  ASSERT_TRUE(log_a.wait_terminal());
  const auto a3 = scheduler.submit(gemm_spec(5, 2, "alice"), nullptr);
  EXPECT_TRUE(a3.ok()) << a3.error_code << ": " << a3.message;
}

// --- Cancellation ---------------------------------------------------------

/// A spinning trial holds the only worker; cancelling its job SIGKILLs
/// the worker, the slot respawns, and the other tenant's queued job gets
/// it — cancellation frees capacity, it never strands it.
TEST(Serve, CancelMidFlightFreesSlotToOtherTenant) {
  SKIP_WITHOUT_WORKER();
  Scheduler scheduler(fast_options(1));

  EventLog spin_log;
  const auto spin = scheduler.submit(fault_spec("fault.spin", 2, "alice"),
                                     spin_log.sink());
  ASSERT_TRUE(spin.ok()) << spin.message;
  ASSERT_TRUE(spin_log.wait_event("job_start"));

  EventLog gemm_log;
  const auto gemm = scheduler.submit(gemm_spec(4, 7, "bob"),
                                     gemm_log.sink());
  ASSERT_TRUE(gemm.ok()) << gemm.message;
  // The only slot is pinned by the spinning trial.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(scheduler.status(gemm.job)->completed, 0u);

  ASSERT_TRUE(scheduler.cancel(spin.job, "test cancel"));
  ASSERT_TRUE(spin_log.wait_terminal());
  EXPECT_EQ(spin_log.count("job_cancel"), 1u);
  ASSERT_TRUE(gemm_log.wait_terminal());
  EXPECT_EQ(gemm_log.count("job_complete"), 1u);
  EXPECT_EQ(scheduler.status(gemm.job)->completed, 4u);
  EXPECT_GE(scheduler.pool().total_kills(), 1u);
}

// --- Fault and fleet resilience -------------------------------------------

/// Every trial of an armed fault.segv job kills its worker mid-trial; the
/// crash verdicts flow back as invalid trials, the slots respawn, and the
/// job still runs its full budget — no ticket is ever stranded.
TEST(Serve, WorkerCrashMidStreamDoesNotStrandJob) {
  SKIP_WITHOUT_WORKER();
  Scheduler scheduler(fast_options(2));
  EventLog log;
  const auto result = scheduler.submit(fault_spec("fault.segv", 4),
                                       log.sink());
  ASSERT_TRUE(result.ok()) << result.message;
  ASSERT_TRUE(log.wait_terminal());
  EXPECT_EQ(log.count("job_complete"), 1u);
  EXPECT_EQ(log.count("job_trial"), 4u);
  for (const Json& event : log.events()) {
    if (event.contains("event") &&
        event.at("event").as_string() == "job_trial") {
      EXPECT_FALSE(event.at("valid").as_bool());
    }
  }
  EXPECT_GE(scheduler.pool().total_crashes(), 4u);
}

/// Shrinking and growing the fleet under two active jobs must not lose a
/// single dispatch: retired slots serve out their in-flight trial, new
/// slots spawn lazily, and both jobs complete their budgets.
TEST(Serve, ResizeDuringActiveJobsNeverStrands) {
  SKIP_WITHOUT_WORKER();
  Scheduler scheduler(fast_options(3));
  EventLog logs[2];
  std::uint64_t ids[2];
  for (int i = 0; i < 2; ++i) {
    const auto result = scheduler.submit(
        gemm_spec(15, 200 + static_cast<std::uint64_t>(i),
                  i == 0 ? "alice" : "bob"),
        logs[i].sink());
    ASSERT_TRUE(result.ok()) << result.message;
    ids[i] = result.job;
  }
  ASSERT_TRUE(logs[0].wait_event("job_start"));
  scheduler.pool().resize(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  scheduler.pool().resize(4);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(logs[i].wait_terminal()) << "job " << ids[i] << " stuck";
    EXPECT_EQ(scheduler.status(ids[i])->completed, 15u);
  }
  EXPECT_EQ(scheduler.pool().num_workers(), 4u);
}

/// Pool-level lease contract: try_acquire is non-blocking and exhausts,
/// released slots come back, resize retires/revives slots, and a leased
/// slot survives shrink-then-release without stranding.
TEST(Serve, PoolLeaseAcquireReleaseResize) {
  SKIP_WITHOUT_WORKER();
  distd::WorkerPoolOptions options;
  options.num_workers = 2;
  options.heartbeat_ms = 100;
  distd::WorkerPool pool(options);

  auto a = pool.try_acquire();
  auto b = pool.try_acquire();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_FALSE(pool.try_acquire().has_value()) << "third lease from 2 slots";

  // A leased slot still measures (benign fault kernel: tiny real work).
  distd::MeasureRequest request;
  request.workload = distd::make_fault_workload("fault.segv");
  request.tiles = {1};
  const runtime::MeasureResult result =
      pool.measure_leased(*a, request);
  EXPECT_TRUE(result.valid) << result.error;

  pool.release(std::move(*a));
  auto again = pool.try_acquire();
  ASSERT_TRUE(again.has_value());  // the slot came back
  pool.release(std::move(*again));

  // Shrink while slot b is still leased: its worker serves out the lease
  // and shuts down on release instead of rejoining the free list.
  pool.resize(1);
  EXPECT_EQ(pool.num_workers(), 1u);
  pool.release(std::move(*b));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Grow again: revived/parked slots are acquirable immediately (they
  // spawn lazily on first dispatch).
  pool.resize(3);
  EXPECT_EQ(pool.num_workers(), 3u);
  std::vector<distd::WorkerPool::Lease> leases;
  for (int i = 0; i < 3; ++i) {
    auto lease = pool.try_acquire();
    ASSERT_TRUE(lease.has_value()) << "slot " << i << " not acquirable";
    leases.push_back(std::move(*lease));
  }
  EXPECT_FALSE(pool.try_acquire().has_value());
  for (auto& lease : leases) {
    const runtime::MeasureResult r = pool.measure_leased(lease, request);
    EXPECT_TRUE(r.valid) << r.error;
    pool.release(std::move(lease));
  }
}

// --- Drain ----------------------------------------------------------------

TEST(Serve, DrainCancelsUnfinishedAndRejectsNew) {
  SKIP_WITHOUT_WORKER();
  Scheduler scheduler(fast_options(1));
  EventLog logs[2];
  std::uint64_t ids[2];
  for (int i = 0; i < 2; ++i) {
    const auto result = scheduler.submit(
        gemm_spec(5000, 300 + static_cast<std::uint64_t>(i),
                  i == 0 ? "alice" : "bob"),
        logs[i].sink());
    ASSERT_TRUE(result.ok()) << result.message;
    ids[i] = result.job;
  }
  scheduler.drain();
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(logs[i].wait_terminal(5)) << "no terminal event";
    EXPECT_EQ(logs[i].count("job_cancel"), 1u);
    const auto status = scheduler.status(ids[i]);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, JobState::kCancelled);
    EXPECT_LT(status->completed, 5000u);
  }
  EXPECT_EQ(scheduler.submit(gemm_spec(5, 1), nullptr).error_code,
            "draining");
}

// --- Socket server + client ----------------------------------------------

std::string temp_socket_path(const char* tag) {
  return "/tmp/tvmbo_serve_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(Serve, ServerSubmitStreamsEventsAndAnswersQueries) {
  SKIP_WITHOUT_WORKER();
  Scheduler scheduler(fast_options(2));
  ServerOptions server_options;
  server_options.socket_path = temp_socket_path("query");
  server_options.poll_ms = 50;
  ServeServer server(&scheduler, server_options);

  ServeClient client(server.endpoint());
  JobSpec spec = gemm_spec(5, 11, "alice");
  const auto outcome = client.submit(spec);
  ASSERT_TRUE(outcome.ok()) << outcome.error_code << ": " << outcome.message;

  std::size_t trials = 0;
  bool complete = false;
  while (!complete) {
    const auto event = client.next_event(/*timeout_ms=*/2000);
    ASSERT_TRUE(event.has_value()) << "event stream stalled";
    const std::string name = event->at("event").as_string();
    if (name == "job_trial") ++trials;
    if (name == "job_complete") complete = true;
  }
  EXPECT_EQ(trials, 5u);

  const auto status = job_status(server.endpoint(), outcome.job);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->at("state").as_string(), "done");
  EXPECT_EQ(status->at("completed").as_int(), 5);

  const Json list = job_list(server.endpoint());
  EXPECT_EQ(list.at("jobs").as_array().size(), 1u);

  // Terminal jobs are not cancellable; unknown ids are typed errors.
  EXPECT_FALSE(job_cancel(server.endpoint(), outcome.job));
  EXPECT_FALSE(job_cancel(server.endpoint(), 999));

  scheduler.drain();
  server.shutdown();
}

/// A vanished client (EOF on the submit connection) cancels its job so an
/// abandoned tenant cannot keep burning the shared fleet.
TEST(Serve, ClientDisconnectCancelsJob) {
  SKIP_WITHOUT_WORKER();
  Scheduler scheduler(fast_options(1));
  ServerOptions server_options;
  server_options.socket_path = temp_socket_path("eof");
  server_options.poll_ms = 50;
  ServeServer server(&scheduler, server_options);

  std::uint64_t job = 0;
  {
    ServeClient client(server.endpoint());
    const auto outcome = client.submit(fault_spec("fault.spin", 2));
    ASSERT_TRUE(outcome.ok()) << outcome.message;
    job = outcome.job;
    // Leaving scope closes the connection mid-job.
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    const auto status = scheduler.status(job);
    ASSERT_TRUE(status.has_value());
    if (status->state == JobState::kCancelled) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "disconnect never cancelled the job";
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  scheduler.drain();
  server.shutdown();
}

}  // namespace
}  // namespace tvmbo::serve
