// Out-of-process measurement (distd): crash isolation, hard timeouts,
// worker respawn, lifecycle tracing, artifact-cache sharing, and the
// local/proc determinism contract.
//
// These tests spawn real tvmbo_worker processes (built alongside the test
// binary; resolved via the same path logic the WorkerPool uses) and are
// skipped when the worker binary cannot be found.
#include "distd/proc_device.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "distd/fault_kernels.h"
#include "framework/session.h"
#include "kernels/polybench.h"
#include "runtime/cpu_device.h"
#include "runtime/measure_runner.h"
#include "runtime/trace_log.h"

namespace tvmbo::distd {
namespace {

bool worker_binary_available() {
  const std::string binary = resolve_worker_binary("");
  // An absolute/relative path was resolved (exe-adjacent or configured);
  // a bare name means the pool would fall back to a $PATH lookup, which
  // the test tree cannot rely on.
  if (binary.find('/') == std::string::npos) return false;
  return ::access(binary.c_str(), X_OK) == 0;
}

#define SKIP_WITHOUT_WORKER()                                        \
  do {                                                               \
    if (!worker_binary_available())                                  \
      GTEST_SKIP() << "tvmbo_worker binary not found; build the "    \
                      "tools targets first";                         \
  } while (0)

/// Benign (or armed, when tiles[0] == kFaultTrigger) input for one of the
/// hostile test kernels. Only the workload id and tiles cross the process
/// boundary; the worker rebuilds the runnable itself.
runtime::MeasureInput fault_input(const std::string& kernel,
                                  std::int64_t lead_tile) {
  return make_fault_input(make_fault_workload(kernel), {lead_tile});
}

/// Distinct valid gemm/mini configurations (real kernel, native backend).
std::vector<runtime::MeasureInput> gemm_batch(std::size_t count,
                                              std::uint64_t seed = 17) {
  const autotvm::Task task =
      kernels::make_task("gemm", kernels::Dataset::kMini);
  const cs::ConfigurationSpace& space = task.config.space();
  Rng rng(seed);
  std::vector<runtime::MeasureInput> inputs;
  for (std::size_t i = 0; i < count; ++i) {
    runtime::MeasureInput input;
    input.workload = task.workload;
    input.tiles = space.values_int(space.sample(rng));
    inputs.push_back(std::move(input));
  }
  return inputs;
}

ProcDeviceOptions proc_options(std::size_t workers,
                               runtime::TraceLog* trace = nullptr) {
  ProcDeviceOptions options;
  options.pool.num_workers = workers;
  options.pool.trace = trace;
  options.pool.heartbeat_ms = 100;
  options.pool.max_respawn_backoff_ms = 200;
  return options;
}

TEST(ProcRunner, SmokeBatchAllValid) {
  SKIP_WITHOUT_WORKER();
  ProcDevice device(proc_options(2));
  EXPECT_EQ(device.max_concurrent_measurements(), 2u);

  runtime::MeasureRunnerOptions runner_options;
  runner_options.parallel = true;
  ThreadPool pool(4);  // the host may report a single core
  runtime::MeasureRunner runner(&device, runner_options, &pool);

  runtime::MeasureOption option;
  option.repeat = 2;
  const auto inputs = gemm_batch(6);
  const auto results = runner.measure_batch(inputs, option);
  ASSERT_EQ(results.size(), inputs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].valid) << "trial " << i << ": "
                                  << results[i].error;
    EXPECT_GT(results[i].runtime_s, 0.0);
  }
  EXPECT_EQ(device.pool().total_crashes(), 0u);
  EXPECT_EQ(device.pool().total_kills(), 0u);
}

/// Crash isolation on a fleet of one and of four: the armed trial comes
/// back invalid with the signal named; every other trial succeeds and the
/// tuner process never sees the SIGSEGV.
void run_crash_isolation(std::size_t workers) {
  ProcDevice device(proc_options(workers));
  runtime::MeasureRunnerOptions runner_options;
  runner_options.parallel = workers > 1;
  ThreadPool pool(4);
  runtime::MeasureRunner runner(&device, runner_options, &pool);

  std::vector<runtime::MeasureInput> inputs;
  for (std::int64_t lead :
       std::vector<std::int64_t>{1, 2, kFaultTrigger, 3, 4, 5}) {
    inputs.push_back(fault_input("fault.segv", lead));
  }
  runtime::MeasureOption option;
  option.repeat = 1;
  const auto results = runner.measure_batch(inputs, option);
  ASSERT_EQ(results.size(), inputs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i == 2) {
      EXPECT_FALSE(results[i].valid);
      EXPECT_NE(results[i].error.find("signal"), std::string::npos)
          << results[i].error;
    } else {
      EXPECT_TRUE(results[i].valid) << "trial " << i << ": "
                                    << results[i].error;
    }
  }
  EXPECT_GE(device.pool().total_crashes(), 1u);
  // The crashed slot was respawned and the device stays usable.
  const auto again =
      runner.measure_batch(std::vector<runtime::MeasureInput>{
                               fault_input("fault.segv", 1)},
                           option);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_TRUE(again[0].valid) << again[0].error;
}

TEST(ProcRunner, CrashIsolationSingleWorker) {
  SKIP_WITHOUT_WORKER();
  run_crash_isolation(1);
}

TEST(ProcRunner, CrashIsolationFourWorkers) {
  SKIP_WITHOUT_WORKER();
  run_crash_isolation(4);
}

TEST(ProcRunner, AbortReportsSignal) {
  SKIP_WITHOUT_WORKER();
  ProcDevice device(proc_options(1));
  runtime::MeasureRunner runner(&device);
  runtime::MeasureOption option;
  option.repeat = 1;
  const auto result =
      runner.measure_one(fault_input("fault.abort", kFaultTrigger), option);
  EXPECT_FALSE(result.valid);
  EXPECT_NE(result.error.find("signal"), std::string::npos) << result.error;
}

TEST(ProcRunner, PrematureExitReportsStatus) {
  SKIP_WITHOUT_WORKER();
  ProcDevice device(proc_options(1));
  runtime::MeasureRunner runner(&device);
  runtime::MeasureOption option;
  option.repeat = 1;
  const auto result =
      runner.measure_one(fault_input("fault.exit", kFaultTrigger), option);
  EXPECT_FALSE(result.valid);
  EXPECT_NE(result.error.find("exit"), std::string::npos) << result.error;
}

/// The cooperative-timeout gap, closed: CpuDevice checks timeout_s only
/// *between* runs, so a single run that never returns escapes it. Behind
/// the process runner the same MeasureOption derives a hard wall-clock
/// deadline — timeout_s * (warmup + repeat + 1) + grace — and the spinning
/// worker is SIGKILLed, the trial reports a "timeout ..." error (so the
/// retry policy classifies it as a timeout, not a transient error), and
/// the fleet respawns the slot.
TEST(ProcRunner, HardTimeoutKillsSpinningRun) {
  SKIP_WITHOUT_WORKER();
  auto options = proc_options(1);
  options.pool.hard_timeout_grace_s = 0.5;
  ProcDevice device(options);
  runtime::MeasureRunner runner(&device);

  runtime::MeasureOption option;
  option.repeat = 1;
  option.timeout_s = 0.25;  // hard deadline: 0.25 * 2 + 0.5 = 1 s
  const auto result =
      runner.measure_one(fault_input("fault.spin", kFaultTrigger), option);
  EXPECT_FALSE(result.valid);
  // The "timeout" prefix is the RetryPolicy::retry_timeouts contract.
  EXPECT_EQ(result.error.rfind("timeout", 0), 0u) << result.error;
  EXPECT_GE(device.pool().total_kills(), 1u);

  // The killed worker was respawned: the device is immediately usable.
  const auto benign =
      runner.measure_one(fault_input("fault.spin", 1), option);
  EXPECT_TRUE(benign.valid) << benign.error;
}

/// ISSUE acceptance: a batch containing a crashing config and a hung
/// config completes with exactly those two trials invalid (signal and
/// timeout errors respectively), all other trials measured, and the tuner
/// process alive for the next batch.
TEST(ProcRunner, MixedCrashAndHangBatchAcceptance) {
  SKIP_WITHOUT_WORKER();
  auto options = proc_options(2);
  options.pool.hard_timeout_grace_s = 0.5;
  ProcDevice device(options);
  runtime::MeasureRunnerOptions runner_options;
  runner_options.parallel = true;
  ThreadPool pool(4);
  runtime::MeasureRunner runner(&device, runner_options, &pool);

  std::vector<runtime::MeasureInput> inputs;
  inputs.push_back(fault_input("fault.segv", 1));             // benign
  inputs.push_back(fault_input("fault.segv", kFaultTrigger));  // crashes
  inputs.push_back(fault_input("fault.spin", 2));             // benign
  inputs.push_back(fault_input("fault.spin", kFaultTrigger));  // hangs
  inputs.push_back(fault_input("fault.abort", 3));            // benign
  inputs.push_back(fault_input("fault.exit", 4));             // benign

  runtime::MeasureOption option;
  option.repeat = 1;
  option.timeout_s = 0.25;
  const auto results = runner.measure_batch(inputs, option);
  ASSERT_EQ(results.size(), inputs.size());

  EXPECT_FALSE(results[1].valid);
  EXPECT_NE(results[1].error.find("signal"), std::string::npos)
      << results[1].error;
  EXPECT_FALSE(results[3].valid);
  EXPECT_EQ(results[3].error.rfind("timeout", 0), 0u) << results[3].error;
  for (std::size_t i : {0u, 2u, 4u, 5u}) {
    EXPECT_TRUE(results[i].valid) << "trial " << i << ": "
                                  << results[i].error;
    EXPECT_GT(results[i].runtime_s, 0.0);
  }

  // Tuner alive: a follow-up all-benign batch on the same device works.
  const auto again = runner.measure_batch(gemm_batch(4), option);
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_TRUE(again[i].valid) << "trial " << i << ": " << again[i].error;
  }
}

TEST(ProcRunner, LifecycleTraceEvents) {
  SKIP_WITHOUT_WORKER();
  std::ostringstream sink;
  runtime::TraceLog trace(&sink);
  {
    auto options = proc_options(1, &trace);
    options.pool.hard_timeout_grace_s = 0.5;
    ProcDevice device(options);
    runtime::MeasureRunner runner(&device);
    runtime::MeasureOption option;
    option.repeat = 1;
    option.timeout_s = 0.25;
    runner.measure_one(fault_input("fault.segv", kFaultTrigger), option);
    runner.measure_one(fault_input("fault.spin", kFaultTrigger), option);
    // Device destruction shuts the fleet down -> worker_exit events.
  }
  const std::string log = sink.str();
  for (const char* event :
       {"worker_spawn", "worker_dispatch", "worker_kill", "worker_respawn",
        "worker_exit", "worker_heartbeat"}) {
    EXPECT_NE(log.find(std::string("\"event\":\"") + event + "\""),
              std::string::npos)
        << "missing " << event << " in trace:\n" << log;
  }
}

/// Satellite: the respawn backoff must not sleep on the dispatching
/// thread. A second consecutive crash parks the slot with a not-before
/// deadline (worker_respawn traced with deferred=true) and the spawn is
/// retried on the slot's next dispatch once the deadline passes.
TEST(ProcRunner, RespawnBackoffDefersWithoutBlockingDispatch) {
  SKIP_WITHOUT_WORKER();
  std::ostringstream sink;
  runtime::TraceLog trace(&sink);
  ProcDevice device(proc_options(1, &trace));
  runtime::MeasureRunner runner(&device);
  runtime::MeasureOption option;
  option.repeat = 1;

  const auto first =
      runner.measure_one(fault_input("fault.segv", kFaultTrigger), option);
  EXPECT_FALSE(first.valid);
  const auto second =
      runner.measure_one(fault_input("fault.segv", kFaultTrigger), option);
  EXPECT_FALSE(second.valid);

  bool immediate = false, deferred = false;
  for (const Json& event : Json::parse_lines(sink.str())) {
    if (event.at("event").as_string() != "worker_respawn") continue;
    if (event.at("deferred").as_bool()) {
      deferred = true;
      EXPECT_GT(event.at("backoff_ms").as_int(), 0);
    } else {
      immediate = true;
    }
  }
  EXPECT_TRUE(immediate);  // first failure respawns right away
  EXPECT_TRUE(deferred);   // second failure parks the slot instead

  // The parked slot comes back on its own: the next dispatch (past the
  // backoff deadline) respawns it and measures normally.
  const auto benign = runner.measure_one(fault_input("fault.segv", 1), option);
  EXPECT_TRUE(benign.valid) << benign.error;
}

/// Satellite: a crash and a hard-timeout of *in-flight* streamed trials
/// surface as invalid completions without wedging the pipeline — every
/// submitted ticket comes back and the device stays usable.
TEST(ProcRunner, AsyncStreamingCrashAndHangSurfaceWithoutWedging) {
  SKIP_WITHOUT_WORKER();
  auto options = proc_options(2);
  options.pool.hard_timeout_grace_s = 0.5;
  ProcDevice device(options);
  runtime::MeasureRunnerOptions runner_options;
  runner_options.parallel = true;
  ThreadPool pool(4);
  runtime::MeasureRunner runner(&device, runner_options, &pool);
  runtime::MeasureOption option;
  option.repeat = 1;
  option.timeout_s = 0.25;

  enum class Kind { kBenign, kCrash, kHang };
  std::map<runtime::MeasureRunner::Ticket, Kind> expected;
  expected[runner.submit(fault_input("fault.segv", 1), option)] =
      Kind::kBenign;
  expected[runner.submit(fault_input("fault.segv", kFaultTrigger), option)] =
      Kind::kCrash;
  expected[runner.submit(fault_input("fault.spin", 2), option)] =
      Kind::kBenign;
  expected[runner.submit(fault_input("fault.spin", kFaultTrigger), option)] =
      Kind::kHang;
  expected[runner.submit(fault_input("fault.abort", 3), option)] =
      Kind::kBenign;

  for (int i = 0; i < 5; ++i) {
    const auto completion = runner.wait_any();
    const auto it = expected.find(completion.ticket);
    ASSERT_NE(it, expected.end()) << "unknown ticket " << completion.ticket;
    switch (it->second) {
      case Kind::kBenign:
        EXPECT_TRUE(completion.result.valid) << completion.result.error;
        break;
      case Kind::kCrash:
        EXPECT_FALSE(completion.result.valid);
        EXPECT_NE(completion.result.error.find("signal"), std::string::npos)
            << completion.result.error;
        break;
      case Kind::kHang:
        EXPECT_FALSE(completion.result.valid);
        EXPECT_EQ(completion.result.error.rfind("timeout", 0), 0u)
            << completion.result.error;
        break;
    }
    expected.erase(it);
  }
  EXPECT_TRUE(expected.empty());
  EXPECT_EQ(runner.in_flight(), 0u);

  // Not wedged: a follow-up streamed trial completes normally.
  runner.submit(fault_input("fault.segv", 2), option);
  EXPECT_TRUE(runner.wait_any().result.valid);
}

TEST(ProcRunner, BadWorkerBinaryThrowsAtConstruction) {
  auto options = proc_options(1);
  options.pool.worker_binary = "/nonexistent/tvmbo_worker";
  options.pool.spawn_timeout_s = 2.0;
  EXPECT_THROW(ProcDevice{options}, CheckError);
}

TEST(ProcRunner, JitBackendSharesOneArtifactCacheAcrossWorkers) {
  SKIP_WITHOUT_WORKER();
  char tmpl[] = "/tmp/tvmbo-proc-cache-XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string cache_dir = tmpl;

  auto options = proc_options(2);
  options.backend = runtime::ExecBackend::kJit;
  options.jit.cache_dir = cache_dir;
  ProcDevice device(options);

  runtime::MeasureRunnerOptions runner_options;
  runner_options.parallel = true;
  ThreadPool pool(4);
  runtime::MeasureRunner runner(&device, runner_options, &pool);
  runtime::MeasureOption option;
  option.repeat = 1;
  // The same configuration twice plus distinct ones: both workers compile
  // into (and hit) the one content-addressed directory.
  auto inputs = gemm_batch(3);
  inputs.push_back(inputs[0]);
  const auto results = runner.measure_batch(inputs, option);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].valid) << "trial " << i << ": "
                                  << results[i].error;
  }
  std::size_t artifacts = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(cache_dir)) {
    (void)entry;
    ++artifacts;
  }
  EXPECT_GT(artifacts, 0u);
  std::filesystem::remove_all(cache_dir);
}

/// Satellite: fixed-seed replay. The random strategy's proposals are
/// independent of measured runtimes, so the same seed must produce the
/// identical per-evaluation configuration sequence whether trials run
/// in-process (CpuDevice) or out-of-process (ProcDevice) — wall-clock
/// noise may change which config *wins*, but never which configs are
/// visited.
TEST(ProcRunner, FixedSeedReplayMatchesLocalRunnerTrajectory) {
  SKIP_WITHOUT_WORKER();
  const autotvm::Task task = kernels::make_task(
      "gemm", kernels::Dataset::kMini, /*executable=*/true);

  framework::SessionOptions session_options;
  session_options.max_evaluations = 8;
  session_options.seed = 2023;

  runtime::CpuDevice local;
  framework::AutotuningSession local_session(&task, &local,
                                             session_options);
  const framework::SessionResult local_result =
      local_session.run(framework::StrategyKind::kAutotvmRandom);

  ProcDevice proc(proc_options(2));
  framework::AutotuningSession proc_session(&task, &proc, session_options);
  const framework::SessionResult proc_result =
      proc_session.run(framework::StrategyKind::kAutotvmRandom);

  ASSERT_EQ(local_result.db.size(), proc_result.db.size());
  for (std::size_t i = 0; i < local_result.db.size(); ++i) {
    EXPECT_EQ(local_result.db.record(i).tiles,
              proc_result.db.record(i).tiles)
        << "evaluation " << i << " diverged between runners";
    EXPECT_TRUE(proc_result.db.record(i).valid);
  }
  ASSERT_TRUE(local_result.best.has_value());
  ASSERT_TRUE(proc_result.best.has_value());
}

}  // namespace
}  // namespace tvmbo::distd
