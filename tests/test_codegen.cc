#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "codegen/artifact_cache.h"
#include "codegen/c_emitter.h"
#include "codegen/jit_program.h"
#include "common/logging.h"
#include "kernels/te_kernels.h"
#include "te/interp.h"
#include "te/lower.h"

namespace tvmbo::codegen {
namespace {

JitOptions test_options(const std::string& subdir) {
  JitOptions options;
  options.cache_dir = testing::TempDir() + "tvmbo-codegen-" + subdir;
  // Hit/miss assertions assume a cold cache; wipe leftovers from prior
  // test runs (the dir is stable across runs by construction).
  std::filesystem::remove_all(options.cache_dir);
  return options;
}

TEST(Fnv1a, DeterministicAndSensitive) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("abc"), fnv1a64("abc"));
  EXPECT_NE(fnv1a64("abc"), fnv1a64("abd"));
  EXPECT_NE(fnv1a64("abc"), fnv1a64("ab"));
}

TEST(CEmitter, EmitsKernelSignatureAndHelpers) {
  const te::Tensor out = te::placeholder({4}, "out");
  const te::Var i = te::make_var("i");
  const te::Stmt stmt = te::make_for(
      i, 4, te::ForKind::kSerial, te::make_store(out, {i}, te::make_float(2.5)));
  const std::string source = emit_c_source(stmt, {out});
  EXPECT_NE(source.find("void tvmbo_kernel(double** bufs)"),
            std::string::npos);
  EXPECT_NE(source.find("bufs[0]"), std::string::npos);
  EXPECT_NE(source.find("tvmbo_fdiv"), std::string::npos);
  // Float constants are emitted as hexfloat so the value round-trips
  // bit-exactly through the C compiler.
  EXPECT_NE(source.find("0x1.4p+1"), std::string::npos);
  EXPECT_NE(source.find("for (int64_t"), std::string::npos);
}

TEST(CEmitter, RealizeRegionsAllocateAndFree) {
  // A scheduled 3mm has two Realize intermediates (E and F).
  kernels::ThreeMmTensors t = kernels::make_3mm(4, 5, 6, 7, 8);
  const std::int64_t tiles[6] = {2, 2, 2, 2, 2, 2};
  const te::Stmt stmt = te::lower(kernels::schedule_3mm(t, tiles));
  const std::string source =
      emit_c_source(stmt, {t.A, t.B, t.C, t.D, t.G});
  EXPECT_NE(source.find("calloc"), std::string::npos);
  EXPECT_NE(source.find("free("), std::string::npos);
  EXPECT_NE(source.find("/* realize E */"), std::string::npos);
  EXPECT_NE(source.find("/* realize F */"), std::string::npos);
}

TEST(CEmitter, RejectsUnboundTensor) {
  const te::Tensor out = te::placeholder({4}, "out");
  const te::Var i = te::make_var("i");
  const te::Stmt stmt = te::make_for(
      i, 4, te::ForKind::kSerial, te::make_store(out, {i}, te::make_float(0.0)));
  EXPECT_THROW(emit_c_source(stmt, {}), CheckError);
}

TEST(JitProgram, CompilesRunsAndMatchesInterpreter) {
  const JitOptions options = test_options("basic");
  if (!JitProgram::toolchain_available(options)) {
    GTEST_SKIP() << "no C toolchain";
  }
  kernels::GemmTensors t = kernels::make_gemm(6, 7, 5);
  const te::Stmt stmt =
      te::lower(kernels::schedule_gemm(t, 3, 4));

  runtime::NDArray a({6, 5}), b({5, 7}), c_jit({6, 7}), c_ref({6, 7});
  for (std::int64_t i = 0; i < a.num_elements(); ++i) {
    a.f64()[i] = 0.25 * static_cast<double>(i % 11) - 1.0;
  }
  for (std::int64_t i = 0; i < b.num_elements(); ++i) {
    b.f64()[i] = 0.5 * static_cast<double>(i % 7) - 1.5;
  }

  JitProgram program = JitProgram::compile(
      stmt, {{t.A, &a}, {t.B, &b}, {t.C, &c_jit}}, options);
  program.run();

  te::Interpreter interp;
  interp.bind(t.A, &a);
  interp.bind(t.B, &b);
  interp.bind(t.C, &c_ref);
  interp.run(stmt);

  for (std::int64_t i = 0; i < c_ref.num_elements(); ++i) {
    EXPECT_EQ(c_jit.f64()[i], c_ref.f64()[i]) << "element " << i;
  }
  EXPECT_FALSE(program.source().empty());
  EXPECT_FALSE(program.artifact_path().empty());
}

TEST(JitProgram, ValidatesBindings) {
  const te::Tensor out = te::placeholder({4}, "out");
  const te::Var i = te::make_var("i");
  const te::Stmt stmt = te::make_for(
      i, 4, te::ForKind::kSerial, te::make_store(out, {i}, te::make_float(0.0)));
  runtime::NDArray wrong_shape({5});
  EXPECT_THROW(
      JitProgram::compile(stmt, {{out, &wrong_shape}}, test_options("val")),
      CheckError);
}

TEST(ArtifactCache, SecondCompileIsACacheHit) {
  const JitOptions options = test_options("hits");
  if (!JitProgram::toolchain_available(options)) {
    GTEST_SKIP() << "no C toolchain";
  }
  const te::Tensor out = te::placeholder({3}, "out");
  const te::Var i = te::make_var("i");
  const te::Stmt stmt = te::make_for(
      i, 3, te::ForKind::kSerial, te::make_store(out, {i}, te::make_float(7.0)));
  runtime::NDArray buffer({3});

  ArtifactCache& cache = ArtifactCache::shared(options);
  cache.reset_stats();

  JitProgram first = JitProgram::compile(stmt, {{out, &buffer}}, options);
  JitProgram second = JitProgram::compile(stmt, {{out, &buffer}}, options);
  EXPECT_TRUE(second.cache_hit());
  EXPECT_EQ(second.compile_s(), 0.0);
  EXPECT_EQ(first.artifact_path(), second.artifact_path());

  const CacheStats stats = cache.stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_EQ(stats.failures, 0u);
  // Different flags -> different key, even for identical source.
  JitOptions debug = options;
  debug.flags = "-O0 -shared -fPIC -ffp-contract=off -std=c11";
  JitProgram third = JitProgram::compile(stmt, {{out, &buffer}}, debug);
  EXPECT_FALSE(third.cache_hit());
  EXPECT_NE(third.artifact_path(), first.artifact_path());
}

TEST(ArtifactCache, ParallelFlagsProduceDistinctKeysAndWarmHits) {
  JitOptions base = test_options("parallel-keys");
  if (!JitProgram::toolchain_available(base)) {
    GTEST_SKIP() << "no C toolchain";
  }
  // One parallel-annotated schedule, three thread budgets. The pragma
  // text (and num_threads clause) lands in the emitted source and the
  // -fopenmp flag in the compile command, so each budget must get its own
  // content-addressed artifact.
  kernels::GemmTensors t = kernels::make_gemm(6, 7, 5);
  const te::Stmt stmt =
      te::lower(kernels::schedule_gemm(t, 3, 4, /*par_axis=*/1));
  runtime::NDArray a({6, 5}), b({5, 7}), c({6, 7});
  const std::vector<std::pair<te::Tensor, runtime::NDArray*>> bindings = {
      {t.A, &a}, {t.B, &b}, {t.C, &c}};

  const int budgets[] = {1, 2, 4};
  std::vector<std::string> paths;
  // Cold pass: compile every variant (the OpenMP probe fires lazily on
  // the first parallel compile and costs one cache miss of its own, so it
  // must happen before the stats reset below).
  for (int threads : budgets) {
    JitOptions options = base;
    options.parallel_threads = threads;
    paths.push_back(
        JitProgram::compile(stmt, bindings, options).artifact_path());
  }
  for (std::size_t i = 0; i < paths.size(); ++i) {
    for (std::size_t j = i + 1; j < paths.size(); ++j) {
      EXPECT_NE(paths[i], paths[j])
          << "budgets " << budgets[i] << " and " << budgets[j];
    }
  }

  // Warm pass: identical configs must be pure cache hits.
  ArtifactCache& cache = ArtifactCache::shared(base);
  cache.reset_stats();
  for (std::size_t i = 0; i < paths.size(); ++i) {
    JitOptions options = base;
    options.parallel_threads = budgets[i];
    JitProgram warm = JitProgram::compile(stmt, bindings, options);
    EXPECT_TRUE(warm.cache_hit()) << "budget " << budgets[i];
    EXPECT_EQ(warm.artifact_path(), paths[i]);
  }
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.hit_rate(), 1.0);
}

TEST(ArtifactCache, CompileFailureReportsLog) {
  const JitOptions options = test_options("fail");
  if (!JitProgram::toolchain_available(options)) {
    GTEST_SKIP() << "no C toolchain";
  }
  ArtifactCache& cache = ArtifactCache::shared(options);
  cache.reset_stats();
  EXPECT_THROW(cache.get_or_compile("this is not C\n",
                                    options.resolved_compiler(),
                                    options.flags),
               CheckError);
  EXPECT_EQ(cache.stats().failures, 1u);
}

TEST(ArtifactCache, ConcurrentIdenticalRequestsCompileOnce) {
  const JitOptions options = test_options("threads");
  if (!JitProgram::toolchain_available(options)) {
    GTEST_SKIP() << "no C toolchain";
  }
  ArtifactCache& cache = ArtifactCache::shared(options);
  cache.reset_stats();
  const std::string source =
      "void tvmbo_kernel(double** bufs) { bufs[0][0] = 42.0; }\n";

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  std::vector<std::string> paths(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      try {
        paths[i] = cache
                       .get_or_compile(source, options.resolved_compiler(),
                                       options.flags)
                       .so_path;
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(paths[i], paths[0]);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups(), static_cast<std::size_t>(kThreads));
  // The per-key mutex serializes identical requests: exactly one miss.
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::size_t>(kThreads - 1));
}

}  // namespace
}  // namespace tvmbo::codegen
