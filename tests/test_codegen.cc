#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "codegen/artifact_cache.h"
#include "codegen/c_emitter.h"
#include "codegen/jit_program.h"
#include "common/logging.h"
#include "kernels/te_kernels.h"
#include "te/interp.h"
#include "te/lower.h"

namespace tvmbo::codegen {
namespace {

JitOptions test_options(const std::string& subdir) {
  JitOptions options;
  options.cache_dir = testing::TempDir() + "tvmbo-codegen-" + subdir;
  // Hit/miss assertions assume a cold cache; wipe leftovers from prior
  // test runs (the dir is stable across runs by construction).
  std::filesystem::remove_all(options.cache_dir);
  return options;
}

TEST(Fnv1a, DeterministicAndSensitive) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("abc"), fnv1a64("abc"));
  EXPECT_NE(fnv1a64("abc"), fnv1a64("abd"));
  EXPECT_NE(fnv1a64("abc"), fnv1a64("ab"));
}

TEST(CEmitter, EmitsKernelSignatureAndHelpers) {
  const te::Tensor out = te::placeholder({4}, "out");
  const te::Var i = te::make_var("i");
  const te::Stmt stmt = te::make_for(
      i, 4, te::ForKind::kSerial, te::make_store(out, {i}, te::make_float(2.5)));
  const std::string source = emit_c_source(stmt, {out});
  EXPECT_NE(source.find("void tvmbo_kernel(double** bufs)"),
            std::string::npos);
  EXPECT_NE(source.find("bufs[0]"), std::string::npos);
  EXPECT_NE(source.find("tvmbo_fdiv"), std::string::npos);
  // Float constants are emitted as hexfloat so the value round-trips
  // bit-exactly through the C compiler.
  EXPECT_NE(source.find("0x1.4p+1"), std::string::npos);
  EXPECT_NE(source.find("for (int64_t"), std::string::npos);
}

TEST(CEmitter, RealizeRegionsAllocateAndFree) {
  // A scheduled 3mm has two Realize intermediates (E and F).
  kernels::ThreeMmTensors t = kernels::make_3mm(4, 5, 6, 7, 8);
  const std::int64_t tiles[6] = {2, 2, 2, 2, 2, 2};
  const te::Stmt stmt = te::lower(kernels::schedule_3mm(t, tiles));
  const std::string source =
      emit_c_source(stmt, {t.A, t.B, t.C, t.D, t.G});
  EXPECT_NE(source.find("calloc"), std::string::npos);
  EXPECT_NE(source.find("free("), std::string::npos);
  EXPECT_NE(source.find("/* realize E */"), std::string::npos);
  EXPECT_NE(source.find("/* realize F */"), std::string::npos);
}

TEST(CEmitter, SimdPragmaOnlyOnProvenVectorizedLoops) {
  // A provably race-free kVectorized loop gets `#pragma omp simd` with an
  // aligned() clause, and the buffer pointers turn restrict — but only
  // when vectorize emission is requested; the default emission stays
  // byte-identical to earlier releases (stable cache keys).
  const te::Tensor out = te::placeholder({8}, "out");
  const te::Var i = te::make_var("i");
  const te::Stmt proven = te::make_for(
      i, 8, te::ForKind::kVectorized,
      te::make_store(out, {i}, te::make_float(1.0)));
  EmitOptions vec;
  vec.vectorize = true;
  const std::string vec_source =
      emit_c_source(proven, {out}, "tvmbo_kernel", vec);
  EXPECT_NE(vec_source.find("#pragma omp simd aligned("), std::string::npos)
      << vec_source;
  EXPECT_NE(vec_source.find("restrict"), std::string::npos);

  const std::string plain = emit_c_source(proven, {out});
  EXPECT_EQ(plain.find("#pragma"), std::string::npos);
  EXPECT_EQ(plain.find("restrict"), std::string::npos);

  // An unproven kVectorized loop (every lane accumulates into the same
  // element) must NOT get the pragma even with vectorize on: emission is
  // keyed on the dependence prover's certificate, not the annotation.
  const te::Tensor acc = te::placeholder({1}, "acc");
  const te::Var k = te::make_var("k");
  const te::Stmt racy = te::make_for(
      k, 8, te::ForKind::kVectorized,
      te::make_store(acc, {te::make_int(0)},
                     te::access(acc, {te::make_int(0)}) +
                         te::make_float(1.0)));
  const std::string racy_source =
      emit_c_source(racy, {acc}, "tvmbo_kernel", vec);
  EXPECT_EQ(racy_source.find("#pragma omp simd"), std::string::npos)
      << racy_source;
}

TEST(CEmitter, UnrollPragmaRequiresFactor) {
  // Residual kUnrolled loops (extent beyond the pre-pass straight-lining
  // limit) get a GCC unroll hint only when a factor >= 2 is supplied.
  const te::Tensor out = te::placeholder({100}, "out");
  const te::Var i = te::make_var("i");
  const te::Stmt stmt = te::make_for(
      i, 100, te::ForKind::kUnrolled,
      te::make_store(out, {i}, te::make_float(1.0)));
  EmitOptions hinted;
  hinted.unroll = true;
  hinted.unroll_factor = 4;
  EXPECT_NE(emit_c_source(stmt, {out}, "tvmbo_kernel", hinted)
                .find("#pragma GCC unroll 4"),
            std::string::npos);
  hinted.unroll_factor = 0;
  EXPECT_EQ(emit_c_source(stmt, {out}, "tvmbo_kernel", hinted)
                .find("#pragma"),
            std::string::npos);
  EXPECT_EQ(emit_c_source(stmt, {out}).find("#pragma"), std::string::npos);
}

TEST(CEmitter, RejectsUnboundTensor) {
  const te::Tensor out = te::placeholder({4}, "out");
  const te::Var i = te::make_var("i");
  const te::Stmt stmt = te::make_for(
      i, 4, te::ForKind::kSerial, te::make_store(out, {i}, te::make_float(0.0)));
  EXPECT_THROW(emit_c_source(stmt, {}), CheckError);
}

TEST(JitProgram, CompilesRunsAndMatchesInterpreter) {
  const JitOptions options = test_options("basic");
  if (!JitProgram::toolchain_available(options)) {
    GTEST_SKIP() << "no C toolchain";
  }
  kernels::GemmTensors t = kernels::make_gemm(6, 7, 5);
  const te::Stmt stmt =
      te::lower(kernels::schedule_gemm(t, 3, 4));

  runtime::NDArray a({6, 5}), b({5, 7}), c_jit({6, 7}), c_ref({6, 7});
  for (std::int64_t i = 0; i < a.num_elements(); ++i) {
    a.f64()[i] = 0.25 * static_cast<double>(i % 11) - 1.0;
  }
  for (std::int64_t i = 0; i < b.num_elements(); ++i) {
    b.f64()[i] = 0.5 * static_cast<double>(i % 7) - 1.5;
  }

  JitProgram program = JitProgram::compile(
      stmt, {{t.A, &a}, {t.B, &b}, {t.C, &c_jit}}, options);
  program.run();

  te::Interpreter interp;
  interp.bind(t.A, &a);
  interp.bind(t.B, &b);
  interp.bind(t.C, &c_ref);
  interp.run(stmt);

  for (std::int64_t i = 0; i < c_ref.num_elements(); ++i) {
    EXPECT_EQ(c_jit.f64()[i], c_ref.f64()[i]) << "element " << i;
  }
  EXPECT_FALSE(program.source().empty());
  EXPECT_FALSE(program.artifact_path().empty());
}

TEST(JitProgram, ValidatesBindings) {
  const te::Tensor out = te::placeholder({4}, "out");
  const te::Var i = te::make_var("i");
  const te::Stmt stmt = te::make_for(
      i, 4, te::ForKind::kSerial, te::make_store(out, {i}, te::make_float(0.0)));
  runtime::NDArray wrong_shape({5});
  EXPECT_THROW(
      JitProgram::compile(stmt, {{out, &wrong_shape}}, test_options("val")),
      CheckError);
}

TEST(ArtifactCache, SecondCompileIsACacheHit) {
  const JitOptions options = test_options("hits");
  if (!JitProgram::toolchain_available(options)) {
    GTEST_SKIP() << "no C toolchain";
  }
  const te::Tensor out = te::placeholder({3}, "out");
  const te::Var i = te::make_var("i");
  const te::Stmt stmt = te::make_for(
      i, 3, te::ForKind::kSerial, te::make_store(out, {i}, te::make_float(7.0)));
  runtime::NDArray buffer({3});

  ArtifactCache& cache = ArtifactCache::shared(options);
  cache.reset_stats();

  JitProgram first = JitProgram::compile(stmt, {{out, &buffer}}, options);
  JitProgram second = JitProgram::compile(stmt, {{out, &buffer}}, options);
  EXPECT_TRUE(second.cache_hit());
  EXPECT_EQ(second.compile_s(), 0.0);
  EXPECT_EQ(first.artifact_path(), second.artifact_path());

  const CacheStats stats = cache.stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_EQ(stats.failures, 0u);
  // Different flags -> different key, even for identical source.
  JitOptions debug = options;
  debug.flags = "-O0 -shared -fPIC -ffp-contract=off -std=c11";
  JitProgram third = JitProgram::compile(stmt, {{out, &buffer}}, debug);
  EXPECT_FALSE(third.cache_hit());
  EXPECT_NE(third.artifact_path(), first.artifact_path());
}

TEST(ArtifactCache, ParallelFlagsProduceDistinctKeysAndWarmHits) {
  JitOptions base = test_options("parallel-keys");
  if (!JitProgram::toolchain_available(base)) {
    GTEST_SKIP() << "no C toolchain";
  }
  // One parallel-annotated schedule, three thread budgets. The pragma
  // text (and num_threads clause) lands in the emitted source and the
  // -fopenmp flag in the compile command, so each budget must get its own
  // content-addressed artifact.
  kernels::GemmTensors t = kernels::make_gemm(6, 7, 5);
  const te::Stmt stmt =
      te::lower(kernels::schedule_gemm(t, 3, 4, /*par_axis=*/1));
  runtime::NDArray a({6, 5}), b({5, 7}), c({6, 7});
  const std::vector<std::pair<te::Tensor, runtime::NDArray*>> bindings = {
      {t.A, &a}, {t.B, &b}, {t.C, &c}};

  const int budgets[] = {1, 2, 4};
  std::vector<std::string> paths;
  // Cold pass: compile every variant (the OpenMP probe fires lazily on
  // the first parallel compile and costs one cache miss of its own, so it
  // must happen before the stats reset below).
  for (int threads : budgets) {
    JitOptions options = base;
    options.parallel_threads = threads;
    paths.push_back(
        JitProgram::compile(stmt, bindings, options).artifact_path());
  }
  for (std::size_t i = 0; i < paths.size(); ++i) {
    for (std::size_t j = i + 1; j < paths.size(); ++j) {
      EXPECT_NE(paths[i], paths[j])
          << "budgets " << budgets[i] << " and " << budgets[j];
    }
  }

  // Warm pass: identical configs must be pure cache hits.
  ArtifactCache& cache = ArtifactCache::shared(base);
  cache.reset_stats();
  for (std::size_t i = 0; i < paths.size(); ++i) {
    JitOptions options = base;
    options.parallel_threads = budgets[i];
    JitProgram warm = JitProgram::compile(stmt, bindings, options);
    EXPECT_TRUE(warm.cache_hit()) << "budget " << budgets[i];
    EXPECT_EQ(warm.artifact_path(), paths[i]);
  }
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.hit_rate(), 1.0);
}

TEST(ArtifactCache, SimdUnrollPackProduceDistinctKeysAndWarmHits) {
  JitOptions base = test_options("vecpack-keys");
  if (!JitProgram::toolchain_available(base)) {
    GTEST_SKIP() << "no C toolchain";
  }
  // The widened-tier knobs must each land in the content-addressed key:
  // the simd pragma text (plus -fopenmp-simd when supported), the
  // straight-lined unroll bodies, and the pack scratch nest all change
  // the emitted source, so no two variants may collide — and a second
  // pass over the same variants must be 100% cache hits.
  kernels::GemmTensors t = kernels::make_gemm(6, 7, 5);
  const te::Stmt serial = te::lower(kernels::schedule_gemm(t, 3, 4));
  const te::Stmt vec = te::lower(
      kernels::schedule_gemm(t, 3, 4, /*par_axis=*/0, /*vec_axis=*/1));
  const te::Stmt unrolled = te::lower(kernels::schedule_gemm(
      t, 3, 4, /*par_axis=*/0, /*vec_axis=*/0, /*unroll=*/2));
  const te::Stmt packed = te::lower(kernels::schedule_gemm(
      t, 3, 4, /*par_axis=*/0, /*vec_axis=*/0, /*unroll=*/0, /*pack=*/true));
  runtime::NDArray a({6, 5}), b({5, 7}), c({6, 7});
  const std::vector<std::pair<te::Tensor, runtime::NDArray*>> bindings = {
      {t.A, &a}, {t.B, &b}, {t.C, &c}};
  // A residual kUnrolled loop (extent beyond the straight-lining limit):
  // only the `#pragma GCC unroll <N>` hint separates the variants, so the
  // pragma text alone must split the key.
  const te::Tensor big = te::placeholder({100}, "big");
  const te::Var i = te::make_var("i");
  const te::Stmt residual = te::make_for(
      i, 100, te::ForKind::kUnrolled,
      te::make_store(big, {i}, te::make_float(1.0)));
  runtime::NDArray big_buf({100});
  const std::vector<std::pair<te::Tensor, runtime::NDArray*>>
      residual_bindings = {{big, &big_buf}};

  JitOptions hint2 = base, hint4 = base;
  hint2.unroll_factor = 2;
  hint4.unroll_factor = 4;

  // Cold pass (the simd probe fires lazily on the first vectorized
  // compile and costs a miss of its own, so it must precede the reset).
  std::vector<std::string> paths;
  paths.push_back(JitProgram::compile(serial, bindings, base)
                      .artifact_path());
  JitProgram vec_program = JitProgram::compile(vec, bindings, base);
  paths.push_back(vec_program.artifact_path());
  paths.push_back(JitProgram::compile(unrolled, bindings, base)
                      .artifact_path());
  JitProgram pack_program = JitProgram::compile(packed, bindings, base);
  paths.push_back(pack_program.artifact_path());
  paths.push_back(JitProgram::compile(residual, residual_bindings, hint2)
                      .artifact_path());
  paths.push_back(JitProgram::compile(residual, residual_bindings, hint4)
                      .artifact_path());
  for (std::size_t x = 0; x < paths.size(); ++x) {
    for (std::size_t y = x + 1; y < paths.size(); ++y) {
      EXPECT_NE(paths[x], paths[y]) << "variants " << x << " and " << y;
    }
  }
  // The knob effects are visible in the emitted text itself.
  if (JitProgram::simd_available(base)) {
    EXPECT_NE(vec_program.source().find("#pragma omp simd aligned("),
              std::string::npos);
  }
  EXPECT_NE(pack_program.source().find("C_A_pack"), std::string::npos)
      << pack_program.source();

  // Warm pass: identical variants must be pure cache hits.
  ArtifactCache& cache = ArtifactCache::shared(base);
  cache.reset_stats();
  EXPECT_TRUE(JitProgram::compile(serial, bindings, base).cache_hit());
  EXPECT_TRUE(JitProgram::compile(vec, bindings, base).cache_hit());
  EXPECT_TRUE(JitProgram::compile(unrolled, bindings, base).cache_hit());
  EXPECT_TRUE(JitProgram::compile(packed, bindings, base).cache_hit());
  EXPECT_TRUE(
      JitProgram::compile(residual, residual_bindings, hint2).cache_hit());
  EXPECT_TRUE(
      JitProgram::compile(residual, residual_bindings, hint4).cache_hit());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.hits, 6u);
  EXPECT_EQ(stats.hit_rate(), 1.0);
}

TEST(ArtifactCache, CompileFailureReportsLog) {
  const JitOptions options = test_options("fail");
  if (!JitProgram::toolchain_available(options)) {
    GTEST_SKIP() << "no C toolchain";
  }
  ArtifactCache& cache = ArtifactCache::shared(options);
  cache.reset_stats();
  EXPECT_THROW(cache.get_or_compile("this is not C\n",
                                    options.resolved_compiler(),
                                    options.flags),
               CheckError);
  EXPECT_EQ(cache.stats().failures, 1u);
}

TEST(ArtifactCache, ConcurrentIdenticalRequestsCompileOnce) {
  const JitOptions options = test_options("threads");
  if (!JitProgram::toolchain_available(options)) {
    GTEST_SKIP() << "no C toolchain";
  }
  ArtifactCache& cache = ArtifactCache::shared(options);
  cache.reset_stats();
  const std::string source =
      "void tvmbo_kernel(double** bufs) { bufs[0][0] = 42.0; }\n";

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  std::vector<std::string> paths(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      try {
        paths[i] = cache
                       .get_or_compile(source, options.resolved_compiler(),
                                       options.flags)
                       .so_path;
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(paths[i], paths[0]);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups(), static_cast<std::size_t>(kThreads));
  // The per-key mutex serializes identical requests: exactly one miss.
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::size_t>(kThreads - 1));
}

}  // namespace
}  // namespace tvmbo::codegen
