#include "ytopt/bayes_opt.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "configspace/divisors.h"
#include "tuners/random_tuner.h"

namespace tvmbo::ytopt {
namespace {

cs::ConfigurationSpace paper_space(std::int64_t extent = 2000) {
  cs::ConfigurationSpace space;
  space.add(cs::tile_factor_param("P0", extent));
  space.add(cs::tile_factor_param("P1", extent));
  return space;
}

double synthetic_runtime(const cs::Configuration& config) {
  const double i0 = static_cast<double>(config.index(0));
  const double i1 = static_cast<double>(config.index(1));
  return 1.0 + 0.01 * ((i0 - 16.0) * (i0 - 16.0) +
                       (i1 - 9.0) * (i1 - 9.0));
}

double run_bo(BayesianOptimizer& bo, std::size_t budget) {
  for (std::size_t i = 0; i < budget; ++i) {
    if (!bo.has_next()) break;
    const cs::Configuration config = bo.ask();
    bo.tell(config, synthetic_runtime(config));
  }
  return bo.best() ? bo.best()->runtime_s
                   : std::numeric_limits<double>::infinity();
}

TEST(BayesOpt, WarmupIsRandomThenSurrogateKicksIn) {
  const auto space = paper_space();
  BoOptions options;
  options.initial_points = 10;
  BayesianOptimizer bo(&space, 1, options);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(bo.surrogate_ready());
    const auto config = bo.ask();
    bo.tell(config, synthetic_runtime(config));
  }
  bo.ask();
  EXPECT_TRUE(bo.surrogate_ready());
}

TEST(BayesOpt, NeverProposesDuplicates) {
  const auto space = paper_space();
  BayesianOptimizer bo(&space, 2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 80; ++i) {
    const auto config = bo.ask();
    EXPECT_TRUE(seen.insert(config.hash()).second) << "iteration " << i;
    bo.tell(config, synthetic_runtime(config));
  }
}

TEST(BayesOpt, FindsNearOptimalConfiguration) {
  const auto space = paper_space();
  BayesianOptimizer bo(&space, 3);
  const double best = run_bo(bo, 100);
  EXPECT_LT(best, 1.05);  // optimum 1.0 over a 400-config space
}

TEST(BayesOpt, BeatsRandomSearchAtEqualBudget) {
  const auto space = paper_space();
  // Average over a few seeds to keep the comparison robust.
  double bo_total = 0.0, random_total = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    BayesianOptimizer bo(&space, seed);
    bo_total += run_bo(bo, 60);

    tuners::RandomTuner random(&space, seed);
    for (int i = 0; i < 60; ++i) {
      const auto batch = random.next_batch(1);
      if (batch.empty()) break;
      tuners::Trial trial{batch[0], synthetic_runtime(batch[0]), true};
      random.update({&trial, 1});
    }
    random_total += random.best()->runtime_s;
  }
  EXPECT_LE(bo_total, random_total);
}

TEST(BayesOpt, PredictionApproximatesSurface) {
  const auto space = paper_space();
  BayesianOptimizer bo(&space, 5);
  run_bo(bo, 80);
  ASSERT_TRUE(bo.surrogate_ready());
  Rng rng(6);
  double err = 0.0;
  for (int i = 0; i < 40; ++i) {
    const auto config = space.sample(rng);
    err += std::fabs(bo.predict(config).mean - synthetic_runtime(config));
  }
  EXPECT_LT(err / 40.0, 0.6);
}

TEST(BayesOpt, AcquisitionIsOptimistic) {
  // LCB = mean - kappa*std must never exceed the mean.
  const auto space = paper_space();
  BayesianOptimizer bo(&space, 7);
  run_bo(bo, 30);
  ASSERT_TRUE(bo.surrogate_ready());
  Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    const auto config = space.sample(rng);
    const auto pred = bo.predict(config);
    // acquisition works in log space; compare to the log-space mean.
    EXPECT_LE(bo.acquisition(config), std::log(pred.mean) + 1e-9);
  }
}

TEST(BayesOpt, InvalidResultsArePenalizedNotCopied) {
  const auto space = paper_space();
  BayesianOptimizer bo(&space, 9);
  // Feed mostly-good results plus invalid ones; best must ignore invalid.
  for (int i = 0; i < 15; ++i) {
    const auto config = bo.ask();
    bo.tell(config, 0.001, /*valid=*/(i % 3 != 0));
  }
  ASSERT_NE(bo.best(), nullptr);
  EXPECT_TRUE(bo.best()->valid);
}

TEST(BayesOpt, NextBatchHonorsRequestedSize) {
  const auto space = paper_space();
  BayesianOptimizer bo(&space, 10);
  EXPECT_EQ(bo.next_batch(1).size(), 1u);
  EXPECT_EQ(bo.next_batch(8).size(), 8u);
  EXPECT_TRUE(bo.next_batch(0).empty());
}

TEST(BayesOpt, QlcbBatchIsDistinctAndCompetitive) {
  const auto space = paper_space();
  BayesianOptimizer bo(&space, 14);
  // Warm up past the initial design so the surrogate drives proposals.
  for (int i = 0; i < 20; ++i) {
    const auto config = bo.ask();
    bo.tell(config, synthetic_runtime(config));
  }
  const auto batch = bo.next_batch(6);
  ASSERT_EQ(batch.size(), 6u);
  std::set<std::uint64_t> unique;
  for (const auto& config : batch) unique.insert(config.hash());
  EXPECT_EQ(unique.size(), 6u);
  // Feed them back and keep going: the batched flow must still converge.
  std::vector<tuners::Trial> trials;
  for (const auto& config : batch) {
    trials.push_back({config, synthetic_runtime(config), true});
  }
  bo.update(trials);
  for (int round = 0; round < 8; ++round) {
    const auto more = bo.next_batch(6);
    std::vector<tuners::Trial> feedback;
    for (const auto& config : more) {
      feedback.push_back({config, synthetic_runtime(config), true});
    }
    bo.update(feedback);
  }
  EXPECT_LT(bo.best()->runtime_s, 1.15);
}

TEST(BayesOpt, ExhaustsTinySpace) {
  const auto space = paper_space(4);  // 9 configs
  BayesianOptimizer bo(&space, 11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 9; ++i) {
    const auto config = bo.ask();
    seen.insert(config.hash());
    bo.tell(config, synthetic_runtime(config));
  }
  EXPECT_EQ(seen.size(), 9u);
  EXPECT_FALSE(bo.has_next());
}

TEST(BayesOpt, ExhaustedNonDiscreteSpaceReturnsShortBatch) {
  // Regression: a space containing a continuous parameter is never
  // "fully discrete", so the exhaustion break in random_fill never
  // fires — but a continuous parameter can still be effectively
  // exhausted (here: a float range holding exactly two representable
  // doubles). Once every distinct configuration is visited,
  // sample_unvisited's fallback returns visited configs forever and
  // next_batch used to spin in random_fill without terminating.
  cs::ConfigurationSpace space;
  space.add(std::make_shared<cs::OrdinalHyperparameter>(
      "P0", std::vector<double>{1.0, 2.0, 4.0}));
  space.add(std::make_shared<cs::UniformFloatHyperparameter>(
      "F", 1.0, 1.0 + 0x1.0p-52));
  ASSERT_FALSE(space.fully_discrete());

  BayesianOptimizer bo(&space, 21);
  const auto first = bo.next_batch(16);
  // Short batch: the ~6 distinct configurations, not the requested 16.
  EXPECT_GE(first.size(), 3u);
  EXPECT_LE(first.size(), 6u);
  for (const auto& config : first) {
    bo.tell(config, 1.0 + static_cast<double>(config.index(0)));
  }
  // Space exhausted: must terminate with an empty batch, not hang.
  const auto second = bo.next_batch(16);
  EXPECT_TRUE(second.empty());
}

TEST(BayesOpt, KappaZeroIsPureExploitation) {
  // With kappa = 0 the acquisition equals the predicted mean.
  const auto space = paper_space();
  BoOptions options;
  options.kappa = 0.0;
  BayesianOptimizer bo(&space, 12, options);
  run_bo(bo, 30);
  Rng rng(13);
  const auto config = space.sample(rng);
  EXPECT_NEAR(bo.acquisition(config), std::log(bo.predict(config).mean),
              1e-9);
}

TEST(BayesOpt, InvalidOptionsThrow) {
  const auto space = paper_space();
  BoOptions bad;
  bad.initial_points = 0;
  EXPECT_THROW(BayesianOptimizer(&space, 1, bad), CheckError);
  BoOptions bad2;
  bad2.local_fraction = 1.5;
  EXPECT_THROW(BayesianOptimizer(&space, 1, bad2), CheckError);
}

}  // namespace
}  // namespace tvmbo::ytopt
