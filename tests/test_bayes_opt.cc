#include "ytopt/bayes_opt.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "configspace/divisors.h"
#include "tuners/random_tuner.h"

namespace tvmbo::ytopt {
namespace {

cs::ConfigurationSpace paper_space(std::int64_t extent = 2000) {
  cs::ConfigurationSpace space;
  space.add(cs::tile_factor_param("P0", extent));
  space.add(cs::tile_factor_param("P1", extent));
  return space;
}

double synthetic_runtime(const cs::Configuration& config) {
  const double i0 = static_cast<double>(config.index(0));
  const double i1 = static_cast<double>(config.index(1));
  return 1.0 + 0.01 * ((i0 - 16.0) * (i0 - 16.0) +
                       (i1 - 9.0) * (i1 - 9.0));
}

double run_bo(BayesianOptimizer& bo, std::size_t budget) {
  for (std::size_t i = 0; i < budget; ++i) {
    if (!bo.has_next()) break;
    const cs::Configuration config = bo.ask();
    bo.tell(config, synthetic_runtime(config));
  }
  return bo.best() ? bo.best()->runtime_s
                   : std::numeric_limits<double>::infinity();
}

TEST(BayesOpt, WarmupIsRandomThenSurrogateKicksIn) {
  const auto space = paper_space();
  BoOptions options;
  options.initial_points = 10;
  BayesianOptimizer bo(&space, 1, options);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(bo.surrogate_ready());
    const auto config = bo.ask();
    bo.tell(config, synthetic_runtime(config));
  }
  bo.ask();
  EXPECT_TRUE(bo.surrogate_ready());
}

TEST(BayesOpt, NeverProposesDuplicates) {
  const auto space = paper_space();
  BayesianOptimizer bo(&space, 2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 80; ++i) {
    const auto config = bo.ask();
    EXPECT_TRUE(seen.insert(config.hash()).second) << "iteration " << i;
    bo.tell(config, synthetic_runtime(config));
  }
}

TEST(BayesOpt, FindsNearOptimalConfiguration) {
  const auto space = paper_space();
  BayesianOptimizer bo(&space, 3);
  const double best = run_bo(bo, 100);
  EXPECT_LT(best, 1.05);  // optimum 1.0 over a 400-config space
}

TEST(BayesOpt, BeatsRandomSearchAtEqualBudget) {
  const auto space = paper_space();
  // Average over a few seeds to keep the comparison robust.
  double bo_total = 0.0, random_total = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    BayesianOptimizer bo(&space, seed);
    bo_total += run_bo(bo, 60);

    tuners::RandomTuner random(&space, seed);
    for (int i = 0; i < 60; ++i) {
      const auto batch = random.next_batch(1);
      if (batch.empty()) break;
      tuners::Trial trial{batch[0], synthetic_runtime(batch[0]), true};
      random.update({&trial, 1});
    }
    random_total += random.best()->runtime_s;
  }
  EXPECT_LE(bo_total, random_total);
}

TEST(BayesOpt, PredictionApproximatesSurface) {
  const auto space = paper_space();
  BayesianOptimizer bo(&space, 5);
  run_bo(bo, 80);
  ASSERT_TRUE(bo.surrogate_ready());
  Rng rng(6);
  double err = 0.0;
  for (int i = 0; i < 40; ++i) {
    const auto config = space.sample(rng);
    err += std::fabs(bo.predict(config).mean - synthetic_runtime(config));
  }
  EXPECT_LT(err / 40.0, 0.6);
}

TEST(BayesOpt, AcquisitionIsOptimistic) {
  // LCB = mean - kappa*std must never exceed the mean.
  const auto space = paper_space();
  BayesianOptimizer bo(&space, 7);
  run_bo(bo, 30);
  ASSERT_TRUE(bo.surrogate_ready());
  Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    const auto config = space.sample(rng);
    const auto pred = bo.predict(config);
    // acquisition works in log space; compare to the log-space mean.
    EXPECT_LE(bo.acquisition(config), std::log(pred.mean) + 1e-9);
  }
}

TEST(BayesOpt, InvalidResultsArePenalizedNotCopied) {
  const auto space = paper_space();
  BayesianOptimizer bo(&space, 9);
  // Feed mostly-good results plus invalid ones; best must ignore invalid.
  for (int i = 0; i < 15; ++i) {
    const auto config = bo.ask();
    bo.tell(config, 0.001, /*valid=*/(i % 3 != 0));
  }
  ASSERT_NE(bo.best(), nullptr);
  EXPECT_TRUE(bo.best()->valid);
}

TEST(BayesOpt, NextBatchHonorsRequestedSize) {
  const auto space = paper_space();
  BayesianOptimizer bo(&space, 10);
  EXPECT_EQ(bo.next_batch(1).size(), 1u);
  EXPECT_EQ(bo.next_batch(8).size(), 8u);
  EXPECT_TRUE(bo.next_batch(0).empty());
}

TEST(BayesOpt, QlcbBatchIsDistinctAndCompetitive) {
  const auto space = paper_space();
  BayesianOptimizer bo(&space, 14);
  // Warm up past the initial design so the surrogate drives proposals.
  for (int i = 0; i < 20; ++i) {
    const auto config = bo.ask();
    bo.tell(config, synthetic_runtime(config));
  }
  const auto batch = bo.next_batch(6);
  ASSERT_EQ(batch.size(), 6u);
  std::set<std::uint64_t> unique;
  for (const auto& config : batch) unique.insert(config.hash());
  EXPECT_EQ(unique.size(), 6u);
  // Feed them back and keep going: the batched flow must still converge.
  std::vector<tuners::Trial> trials;
  for (const auto& config : batch) {
    trials.push_back({config, synthetic_runtime(config), true});
  }
  bo.update(trials);
  for (int round = 0; round < 8; ++round) {
    const auto more = bo.next_batch(6);
    std::vector<tuners::Trial> feedback;
    for (const auto& config : more) {
      feedback.push_back({config, synthetic_runtime(config), true});
    }
    bo.update(feedback);
  }
  EXPECT_LT(bo.best()->runtime_s, 1.15);
}

TEST(BayesOpt, ExhaustsTinySpace) {
  const auto space = paper_space(4);  // 9 configs
  BayesianOptimizer bo(&space, 11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 9; ++i) {
    const auto config = bo.ask();
    seen.insert(config.hash());
    bo.tell(config, synthetic_runtime(config));
  }
  EXPECT_EQ(seen.size(), 9u);
  EXPECT_FALSE(bo.has_next());
}

TEST(BayesOpt, ExhaustedNonDiscreteSpaceReturnsShortBatch) {
  // Regression: a space containing a continuous parameter is never
  // "fully discrete", so the exhaustion break in random_fill never
  // fires — but a continuous parameter can still be effectively
  // exhausted (here: a float range holding exactly two representable
  // doubles). Once every distinct configuration is visited,
  // sample_unvisited's fallback returns visited configs forever and
  // next_batch used to spin in random_fill without terminating.
  cs::ConfigurationSpace space;
  space.add(std::make_shared<cs::OrdinalHyperparameter>(
      "P0", std::vector<double>{1.0, 2.0, 4.0}));
  space.add(std::make_shared<cs::UniformFloatHyperparameter>(
      "F", 1.0, 1.0 + 0x1.0p-52));
  ASSERT_FALSE(space.fully_discrete());

  BayesianOptimizer bo(&space, 21);
  const auto first = bo.next_batch(16);
  // Short batch: the ~6 distinct configurations, not the requested 16.
  EXPECT_GE(first.size(), 3u);
  EXPECT_LE(first.size(), 6u);
  for (const auto& config : first) {
    bo.tell(config, 1.0 + static_cast<double>(config.index(0)));
  }
  // Space exhausted: must terminate with an empty batch, not hang.
  const auto second = bo.next_batch(16);
  EXPECT_TRUE(second.empty());
}

TEST(BayesOpt, KappaZeroIsPureExploitation) {
  // With kappa = 0 the acquisition equals the predicted mean.
  const auto space = paper_space();
  BoOptions options;
  options.kappa = 0.0;
  BayesianOptimizer bo(&space, 12, options);
  run_bo(bo, 30);
  Rng rng(13);
  const auto config = space.sample(rng);
  EXPECT_NEAR(bo.acquisition(config), std::log(bo.predict(config).mean),
              1e-9);
}

TEST(BayesOpt, FailurePenaltyIsScaleRelative) {
  // Regression: failed trials used to be imputed at max(2x worst, 1.0 s)
  // — an absolute floor ~6 orders of magnitude off for a
  // microsecond-scale kernel, warping the log-space surrogate around
  // every failure. The penalty must stay on the kernel's own scale.
  const auto space = paper_space();
  BoOptions options;
  options.initial_points = 4;
  BayesianOptimizer bo(&space, 41, options);
  for (int i = 0; i < 60; ++i) {
    const auto config = bo.ask();
    const bool fails = config.index(0) >= 10;
    const double runtime =
        1.0e-6 * (1.0 + 0.05 * static_cast<double>(config.index(1)));
    bo.tell(config, fails ? 0.0 : runtime, !fails);
  }
  ASSERT_TRUE(bo.surrogate_ready());
  Rng rng(42);
  for (int i = 0; i < 30; ++i) {
    const auto config = space.sample(rng);
    // Every prediction is bounded by the 2x-worst-valid penalty — far
    // below the old 1 s floor.
    EXPECT_LT(bo.predict(config).mean, 1.0e-3);
  }
}

TEST(BayesOpt, AllInvalidHistoryStaysRandom) {
  // With no valid observation an all-imputed dataset would anchor the
  // forest at an arbitrary constant; the optimizer must stay in the
  // random design instead of fitting one.
  const auto space = paper_space();
  BoOptions options;
  options.initial_points = 3;
  BayesianOptimizer bo(&space, 51, options);
  for (int i = 0; i < 20; ++i) {
    const auto config = bo.ask();
    bo.tell(config, 0.0, /*valid=*/false);
  }
  EXPECT_FALSE(bo.surrogate_ready());
  EXPECT_TRUE(bo.has_next());
}

TEST(BayesOpt, PendingTrackedAndClearedOnTell) {
  const auto space = paper_space();
  BayesianOptimizer bo(&space, 61);
  EXPECT_EQ(bo.pending_count(), 0u);
  std::vector<cs::Configuration> flight;
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 6; ++i) {
    flight.push_back(bo.ask());
    // A config still in flight is never proposed a second time.
    EXPECT_TRUE(seen.insert(flight.back().hash()).second) << "ask " << i;
  }
  EXPECT_EQ(bo.pending_count(), 6u);
  for (const auto& config : flight) bo.tell(config, 1.0);
  EXPECT_EQ(bo.pending_count(), 0u);
}

TEST(BayesOpt, StreamingAsksWithPendingUseConstantLiar) {
  const auto space = paper_space();
  BoOptions options;
  options.initial_points = 8;
  BayesianOptimizer bo(&space, 62, options);
  for (int i = 0; i < 12; ++i) {
    const auto config = bo.ask();
    bo.tell(config, synthetic_runtime(config));
  }
  // Past the initial design every ask refits; with results still in
  // flight the pending configs enter the dataset as cl-max liars rather
  // than blocking the ask or being re-proposed.
  std::vector<cs::Configuration> flight;
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5; ++i) {
    const auto config = bo.ask();
    EXPECT_TRUE(seen.insert(config.hash()).second)
        << "config proposed twice while in flight";
    flight.push_back(config);
    EXPECT_EQ(bo.pending_count(), static_cast<std::size_t>(i) + 1);
  }
  ASSERT_TRUE(bo.surrogate_ready());
  for (const auto& config : flight) {
    bo.tell(config, synthetic_runtime(config));
  }
  EXPECT_EQ(bo.pending_count(), 0u);
}

TEST(BayesOpt, LocalFractionSurvivesVisitedNeighborhoods) {
  // Regression: local-exploitation candidates whose neighbour draw was
  // already visited used to be dropped without replacement, so late in a
  // run — when the incumbents' whole neighbourhood is measured — the
  // local share of the candidate pool silently shrank toward zero and
  // the search degraded to pure uniform sampling. Visit a 7x7 index
  // block whose centre holds the 5 best runtimes: every 1-2-hop
  // neighbour of every incumbent is visited, so the old code admitted
  // exactly zero local candidates; the bounded extra hops must still
  // find unvisited configurations outside the block.
  const auto space = paper_space();  // 20x20 index grid
  BoOptions options;
  options.initial_points = 5;
  BayesianOptimizer bo(&space, 31, options);
  Rng rng(32);
  cs::Configuration proto = space.sample(rng);
  std::vector<tuners::Trial> prior;
  for (std::int64_t i = 7; i <= 13; ++i) {
    for (std::int64_t j = 7; j <= 13; ++j) {
      cs::Configuration config = proto;
      config.set_index(0, i);
      config.set_index(1, j);
      const double dist =
          static_cast<double>(std::abs(i - 10) + std::abs(j - 10));
      prior.push_back({config, 1.0 + 0.1 * dist, true});
    }
  }
  bo.warm_start(prior);
  bo.ask();
  EXPECT_GE(bo.last_local_candidates(), 5u);
}

TEST(BayesOpt, InvalidOptionsThrow) {
  const auto space = paper_space();
  BoOptions bad;
  bad.initial_points = 0;
  EXPECT_THROW(BayesianOptimizer(&space, 1, bad), CheckError);
  BoOptions bad2;
  bad2.local_fraction = 1.5;
  EXPECT_THROW(BayesianOptimizer(&space, 1, bad2), CheckError);
}

}  // namespace
}  // namespace tvmbo::ytopt
