#include "runtime/buffer.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "common/logging.h"

namespace tvmbo::runtime {
namespace {

TEST(NDArray, AllocatesZeroInitialized) {
  NDArray a({3, 4});
  EXPECT_EQ(a.num_elements(), 12);
  for (double v : a.f64()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(NDArray, RowMajorLayout) {
  NDArray a({2, 3});
  a.set2(1, 2, 7.5);
  EXPECT_DOUBLE_EQ(a.f64()[5], 7.5);
  a.set2(0, 1, -1.0);
  EXPECT_DOUBLE_EQ(a.f64()[1], -1.0);
}

TEST(NDArray, MultiDimIndexing) {
  NDArray a({2, 3, 4});
  const std::int64_t idx[3] = {1, 2, 3};
  a.write(idx, 9.0);
  EXPECT_DOUBLE_EQ(a.read(idx), 9.0);
  EXPECT_DOUBLE_EQ(a.f64()[1 * 12 + 2 * 4 + 3], 9.0);
}

TEST(NDArray, OutOfBoundsThrows) {
  NDArray a({2, 2});
  const std::int64_t bad[2] = {2, 0};
  EXPECT_THROW(a.read(bad), tvmbo::CheckError);
  const std::int64_t wrong_rank[1] = {0};
  EXPECT_THROW(a.read(wrong_rank), tvmbo::CheckError);
}

TEST(NDArray, NonPositiveExtentThrows) {
  EXPECT_THROW(NDArray({0, 3}), tvmbo::CheckError);
  EXPECT_THROW(NDArray({-1}), tvmbo::CheckError);
}

TEST(NDArray, CopyIsDeep) {
  NDArray a({2, 2});
  a.set2(0, 0, 1.0);
  NDArray b = a;
  b.set2(0, 0, 2.0);
  EXPECT_DOUBLE_EQ(a.at2(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(b.at2(0, 0), 2.0);
}

TEST(NDArray, CopyAssignReplacesContents) {
  NDArray a({2, 2});
  a.fill(3.0);
  NDArray b({2, 2});
  b = a;
  EXPECT_DOUBLE_EQ(b.at2(1, 1), 3.0);
}

TEST(NDArray, FillAndAllclose) {
  NDArray a({4, 4});
  NDArray b({4, 4});
  a.fill(1.5);
  b.fill(1.5);
  EXPECT_TRUE(a.allclose(b));
  b.set2(2, 2, 1.5 + 1e-6);
  EXPECT_FALSE(a.allclose(b, 1e-9));
  EXPECT_TRUE(a.allclose(b, 1e-3));
}

TEST(NDArray, MaxAbsDiff) {
  NDArray a({2, 2});
  NDArray b({2, 2});
  b.set2(1, 0, -4.0);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 4.0);
}

TEST(NDArray, AllcloseShapeMismatchIsFalse) {
  NDArray a({2, 2});
  NDArray b({2, 3});
  EXPECT_FALSE(a.allclose(b));
}

TEST(NDArray, Float32Storage) {
  NDArray a({2, 2}, DType::kFloat32);
  a.set2(0, 1, 1.25);
  EXPECT_FLOAT_EQ(a.f32()[1], 1.25f);
  EXPECT_DOUBLE_EQ(a.at2(0, 1), 1.25);
  EXPECT_THROW(a.f64(), tvmbo::CheckError);
}

TEST(NDArray, AlignedBasePointer) {
  NDArray a({7});
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.f64().data()) % 64, 0u);
}

TEST(NDArray, DtypeHelpers) {
  EXPECT_EQ(dtype_bytes(DType::kFloat32), 4u);
  EXPECT_EQ(dtype_bytes(DType::kFloat64), 8u);
  EXPECT_EQ(dtype_name(DType::kFloat32), "float32");
  EXPECT_EQ(dtype_name(DType::kFloat64), "float64");
}

}  // namespace
}  // namespace tvmbo::runtime
