#include "te/tensor.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tvmbo::te {
namespace {

TEST(Tensor, PlaceholderBasics) {
  Tensor a = placeholder({3, 4}, "A");
  EXPECT_TRUE(a->is_placeholder());
  EXPECT_FALSE(a->is_compute());
  EXPECT_EQ(a->name, "A");
  EXPECT_EQ(a->shape, (std::vector<std::int64_t>{3, 4}));
  EXPECT_TRUE(a->inputs().empty());
}

TEST(Tensor, PlaceholderRejectsBadShape) {
  EXPECT_THROW(placeholder({}, "A"), CheckError);
  EXPECT_THROW(placeholder({0}, "A"), CheckError);
}

TEST(Tensor, ElementwiseCompute) {
  Tensor a = placeholder({4, 4}, "A");
  Tensor b = compute({4, 4}, "B", [&](const std::vector<Var>& i) {
    return access(a, {i[0], i[1]}) * make_float(2.0);
  });
  EXPECT_TRUE(b->is_compute());
  EXPECT_FALSE(b->is_reduction);
  EXPECT_EQ(b->axis.size(), 2u);
  EXPECT_EQ(b->axis[0]->extent, 4);
  ASSERT_EQ(b->inputs().size(), 1u);
  EXPECT_EQ(b->inputs()[0].get(), a.get());
}

TEST(Tensor, ReductionCompute) {
  Tensor a = placeholder({3, 5}, "A");
  Tensor b = placeholder({5, 2}, "B");
  IterVar k = reduce_axis(5, "k");
  Tensor c = compute(
      {3, 2}, "C",
      [&](const std::vector<Var>& i) {
        return sum(access(a, {i[0], k->var}) * access(b, {k->var, i[1]}),
                   {k->var});
      },
      {k});
  EXPECT_TRUE(c->is_reduction);
  EXPECT_EQ(c->reduce_kind, ReduceKind::kSum);
  ASSERT_EQ(c->reduce_axes.size(), 1u);
  EXPECT_EQ(c->reduce_axes[0].get(), k.get());
  EXPECT_DOUBLE_EQ(c->reduce_identity(), 0.0);
}

TEST(Tensor, MaxReductionIdentity) {
  Tensor a = placeholder({4}, "A");
  IterVar k = reduce_axis(4, "k");
  Tensor m = compute(
      {1}, "M",
      [&](const std::vector<Var>&) {
        return max_reduce(access(a, {k->var}), {k->var});
      },
      {k});
  EXPECT_EQ(m->reduce_kind, ReduceKind::kMax);
  EXPECT_TRUE(std::isinf(m->reduce_identity()));
  EXPECT_LT(m->reduce_identity(), 0.0);
}

TEST(Tensor, UndeclaredReduceAxisThrows) {
  Tensor a = placeholder({4}, "A");
  IterVar k = reduce_axis(4, "k");
  EXPECT_THROW(compute({1}, "S",
                       [&](const std::vector<Var>&) {
                         return sum(access(a, {k->var}), {k->var});
                       }),
               CheckError);
}

TEST(Tensor, DeclaredAxisWithoutReductionThrows) {
  Tensor a = placeholder({4}, "A");
  IterVar k = reduce_axis(4, "k");
  EXPECT_THROW(
      compute(
          {4}, "B",
          [&](const std::vector<Var>& i) { return access(a, {i[0]}); },
          {k}),
      CheckError);
}

TEST(Tensor, MismatchedReduceAxisThrows) {
  Tensor a = placeholder({4}, "A");
  IterVar k = reduce_axis(4, "k");
  IterVar other = reduce_axis(4, "o");
  EXPECT_THROW(compute({1}, "S",
                       [&](const std::vector<Var>&) {
                         return sum(access(a, {k->var}), {k->var});
                       },
                       {other}),
               CheckError);
}

TEST(Tensor, TopoSortProducerBeforeConsumer) {
  Tensor a = placeholder({2, 2}, "A");
  Tensor b = compute({2, 2}, "B", [&](const std::vector<Var>& i) {
    return access(a, {i[0], i[1]}) + make_float(1.0);
  });
  Tensor c = compute({2, 2}, "C", [&](const std::vector<Var>& i) {
    return access(b, {i[0], i[1]}) * make_float(3.0);
  });
  const auto order = topo_sort({c});
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].get(), a.get());
  EXPECT_EQ(order[1].get(), b.get());
  EXPECT_EQ(order[2].get(), c.get());
}

TEST(Tensor, TopoSortDiamondVisitsOnce) {
  Tensor a = placeholder({2}, "A");
  Tensor left = compute({2}, "L", [&](const std::vector<Var>& i) {
    return access(a, {i[0]}) + make_float(1.0);
  });
  Tensor right = compute({2}, "R", [&](const std::vector<Var>& i) {
    return access(a, {i[0]}) * make_float(2.0);
  });
  Tensor top = compute({2}, "T", [&](const std::vector<Var>& i) {
    return access(left, {i[0]}) + access(right, {i[0]});
  });
  const auto order = topo_sort({top});
  EXPECT_EQ(order.size(), 4u);  // a, left, right, top — no duplicates
}

TEST(Tensor, ReduceAxisRequiresPositiveExtent) {
  EXPECT_THROW(reduce_axis(0, "k"), CheckError);
}

}  // namespace
}  // namespace tvmbo::te
