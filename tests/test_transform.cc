#include "te/transform.h"

#include <gtest/gtest.h>

#include "kernels/reference.h"
#include "te/interp.h"
#include "te/printer.h"

namespace tvmbo::te {
namespace {

using runtime::NDArray;

struct MatmulProgram {
  Tensor a, b, c;
  Stmt program;
  NDArray ma, mb, expected;

  explicit MatmulProgram(std::int64_t n, std::int64_t ty, std::int64_t tx,
                         bool unroll_inner = false)
      : ma({n, n}), mb({n, n}), expected({n, n}) {
    a = placeholder({n, n}, "A");
    b = placeholder({n, n}, "B");
    IterVar k = reduce_axis(n, "k");
    c = compute(
        {n, n}, "C",
        [&](const std::vector<Var>& i) {
          return sum(access(a, {i[0], k->var}) * access(b, {k->var, i[1]}),
                     {k->var});
        },
        {k});
    Schedule sched({c});
    Stage& stage = sched[c];
    auto [yo, yi] = stage.split(stage.op_axis()[0], ty);
    auto [xo, xi] = stage.split(stage.op_axis()[1], tx);
    stage.reorder({yo, xo, stage.op_reduce_axis()[0], yi, xi});
    if (unroll_inner) stage.unroll(xi);
    program = lower(sched);
    kernels::init_gemm(ma, mb);
    kernels::ref_matmul(ma, mb, expected);
  }

  NDArray run(const Stmt& stmt) const {
    NDArray out({ma.shape()[0], ma.shape()[0]});
    Interpreter interp;
    interp.bind(a, const_cast<NDArray*>(&ma));
    interp.bind(b, const_cast<NDArray*>(&mb));
    interp.bind(c, &out);
    interp.run(stmt);
    return out;
  }
};

TEST(Transform, SubstituteStmtReplacesEverywhere) {
  Tensor t = placeholder({8}, "T");
  Var i = make_var("i");
  Stmt store = make_store(t, {i}, access(t, {i}) + make_float(1.0));
  Stmt replaced = substitute_stmt(store, {{i, make_int(3)}});
  EXPECT_EQ(to_string(replaced), "T[3] = (T[3] + 1.0)\n");
}

TEST(Transform, SimplifyInlinesExtentOneLoops) {
  // Splitting an axis by its full extent yields outer loops of extent 1.
  MatmulProgram fx(8, 8, 8);
  const std::size_t loops_before = count_stmts(fx.program, StmtKind::kFor);
  const Stmt simplified = simplify(fx.program);
  const std::size_t loops_after = count_stmts(simplified, StmtKind::kFor);
  EXPECT_LT(loops_after, loops_before);  // yo/xo (extent 1) inlined
  EXPECT_TRUE(fx.run(simplified).allclose(fx.expected, 1e-12));
}

TEST(Transform, SimplifyPreservesSemanticsWithGuards) {
  MatmulProgram fx(10, 3, 4);  // non-exact splits -> guards
  const Stmt simplified = simplify(fx.program);
  EXPECT_TRUE(fx.run(simplified).allclose(fx.expected, 1e-12));
}

TEST(Transform, SimplifyFoldsConstantIf) {
  Tensor t = placeholder({4}, "T");
  Var i = make_var("i");
  Stmt store = make_store(t, {i}, make_float(1.0));
  Stmt wrapped = make_for(
      i, 4, ForKind::kSerial,
      std::make_shared<IfThenElseNode>(lt(make_int(1), make_int(2)), store,
                                       nullptr));
  const Stmt simplified = simplify(wrapped);
  EXPECT_EQ(count_stmts(simplified, StmtKind::kIfThenElse), 0u);
}

TEST(Transform, SimplifyDropsDeadBranch) {
  Tensor t = placeholder({4}, "T");
  Var i = make_var("i");
  Stmt store = make_store(t, {i}, make_float(1.0));
  Stmt dead = std::make_shared<IfThenElseNode>(make_int(0), store, nullptr);
  Stmt loop = make_for(i, 4, ForKind::kSerial,
                       make_seq({store, dead}));
  const Stmt simplified = simplify(loop);
  EXPECT_EQ(count_stmts(simplified, StmtKind::kStore), 1u);
}

TEST(Transform, UnrollExpandsAnnotatedLoops) {
  MatmulProgram fx(8, 2, 4, /*unroll_inner=*/true);
  const Stmt unrolled = unroll_loops(fx.program);
  // The xi loop (extent 4, unrolled) disappears; 4 stores appear in its
  // place inside the update nest.
  EXPECT_LT(count_stmts(unrolled, StmtKind::kFor),
            count_stmts(fx.program, StmtKind::kFor));
  EXPECT_GT(count_stmts(unrolled, StmtKind::kStore),
            count_stmts(fx.program, StmtKind::kStore));
  EXPECT_TRUE(fx.run(unrolled).allclose(fx.expected, 1e-12));
}

TEST(Transform, UnrollRespectsMaxExtent) {
  MatmulProgram fx(8, 2, 8, /*unroll_inner=*/true);
  const Stmt untouched = unroll_loops(fx.program, /*max_extent=*/4);
  EXPECT_EQ(count_stmts(untouched, StmtKind::kFor),
            count_stmts(fx.program, StmtKind::kFor));
}

TEST(Transform, ValidateAcceptsLoweredPrograms) {
  MatmulProgram fx(6, 2, 3);
  EXPECT_GT(validate(fx.program), 5u);
  EXPECT_GT(validate(simplify(fx.program)), 0u);
  EXPECT_GT(validate(unroll_loops(fx.program)), 0u);
}

TEST(Transform, ValidateCatchesUnboundVariable) {
  Tensor t = placeholder({4}, "T");
  Var stray = make_var("stray");
  Stmt bad = make_store(t, {stray}, make_float(0.0));
  EXPECT_THROW(validate(bad), CheckError);
}

TEST(Transform, ValidateCatchesShadowing) {
  Tensor t = placeholder({4}, "T");
  Var i = make_var("i");
  Stmt inner = make_for(i, 2, ForKind::kSerial,
                        make_store(t, {i}, make_float(0.0)));
  Stmt outer = make_for(i, 4, ForKind::kSerial, inner);
  EXPECT_THROW(validate(outer), CheckError);
}

TEST(Transform, EstimateOpsMatmul) {
  MatmulProgram fx(8, 2, 4);
  const OpCounts counts = estimate_ops(fx.program);
  // Update nest: 8*8*8 iterations x (1 store, 3 loads: C, A, B).
  // Init nest: 8*8 stores. Total stores 512 + 64.
  EXPECT_EQ(counts.stores, 512u + 64u);
  EXPECT_EQ(counts.loads, 3u * 512u);
  // Arithmetic: per update at least mul + add (plus index arithmetic).
  EXPECT_GE(counts.arithmetic, 2u * 512u);
}

TEST(Transform, EstimateOpsScalesWithExtents) {
  MatmulProgram small(4, 2, 2);
  MatmulProgram large(8, 2, 2);
  const OpCounts cs = estimate_ops(small.program);
  const OpCounts cl = estimate_ops(large.program);
  EXPECT_EQ(cl.stores - 64, (cs.stores - 16) * 8);  // update nest ~ n^3
}

TEST(Transform, SimplifiedProgramStillValidatesAndRuns) {
  for (int ty : {1, 3, 8}) {
    for (int tx : {1, 5, 8}) {
      MatmulProgram fx(8, ty, tx);
      const Stmt pipeline = unroll_loops(simplify(fx.program));
      validate(pipeline);
      EXPECT_TRUE(fx.run(pipeline).allclose(fx.expected, 1e-12))
          << "ty=" << ty << " tx=" << tx;
    }
  }
}

}  // namespace
}  // namespace tvmbo::te
