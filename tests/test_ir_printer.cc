#include <gtest/gtest.h>

#include "te/interp.h"
#include "te/printer.h"

namespace tvmbo::te {
namespace {

TEST(Ir, MakeSeqFlattensSingleton) {
  Tensor a = placeholder({2}, "A");
  Var i = make_var("i");
  Stmt store = make_store(a, {i}, make_float(1.0));
  EXPECT_EQ(make_seq({store}).get(), store.get());
}

TEST(Ir, MakeIfFoldsConstantCondition) {
  Tensor a = placeholder({2}, "A");
  Var i = make_var("i");
  Stmt store = make_store(a, {i}, make_float(1.0));
  EXPECT_EQ(make_if(make_int(1), store).get(), store.get());
  EXPECT_EQ(make_if(make_int(0), store), nullptr);
}

TEST(Ir, StoreRankMismatchThrows) {
  Tensor a = placeholder({2, 2}, "A");
  Var i = make_var("i");
  EXPECT_THROW(make_store(a, {i}, make_float(1.0)), CheckError);
}

TEST(Ir, CountAndDepthHelpers) {
  Tensor a = placeholder({4}, "A");
  Var i = make_var("i");
  Var j = make_var("j");
  Stmt inner = make_for(j, 2, ForKind::kSerial,
                        make_store(a, {i}, make_float(0.0)));
  Stmt loop = make_for(i, 4, ForKind::kParallel, inner);
  EXPECT_EQ(count_stmts(loop, StmtKind::kFor), 2u);
  EXPECT_EQ(count_stmts(loop, StmtKind::kStore), 1u);
  EXPECT_EQ(loop_depth(loop), 2u);
  const auto vars = leftmost_loop_vars(loop);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0].get(), i.get());
  EXPECT_EQ(vars[1].get(), j.get());
}

TEST(Printer, ExprRendering) {
  Var i = make_var("i");
  Var j = make_var("j");
  Tensor a = placeholder({4, 4}, "A");
  EXPECT_EQ(to_string(access(a, {i, j}) * make_float(2.0)),
            "(A[i, j]*2.0)");
  EXPECT_EQ(to_string(min_expr(i, j)), "min(i, j)");
  EXPECT_EQ(to_string(lt(i, make_int(5))), "(i < 5)");
  EXPECT_EQ(to_string(sqrt_expr(Expr(i))), "sqrt(i)");
  EXPECT_EQ(to_string(floor_div(i, make_int(2))), "(i//2)");
}

TEST(Printer, StmtRenderingShowsAnnotationsAndStructure) {
  Tensor a = placeholder({4}, "A");
  Var i = make_var("i");
  Stmt body = make_store(a, {i}, make_float(1.0));
  Stmt guarded = make_if(lt(i, make_int(3)), body);
  Stmt loop = make_for(i, 4, ForKind::kParallel, guarded);
  const std::string text = to_string(loop);
  EXPECT_NE(text.find("parallel i in range(4):"), std::string::npos);
  EXPECT_NE(text.find("if (i < 3):"), std::string::npos);
  EXPECT_NE(text.find("A[i] = 1.0"), std::string::npos);
}

TEST(Printer, RealizeRendering) {
  Tensor t = placeholder({2, 3}, "T");
  Var i = make_var("i");
  Var j = make_var("j");
  Stmt store = make_store(t, {i, j}, make_float(0.0));
  Stmt realize = make_realize(
      t, make_for(i, 2, ForKind::kSerial,
                  make_for(j, 3, ForKind::kSerial, store)));
  const std::string text = to_string(realize);
  EXPECT_NE(text.find("realize T(2, 3):"), std::string::npos);
}

TEST(Printer, ReduceMarkerRendering) {
  Tensor a = placeholder({4}, "A");
  Var k = make_var("k");
  Expr body = sum(access(a, {k}), {k});
  EXPECT_EQ(to_string(body), "sum(A[k], axis=[k])");
}

TEST(Printer, LoweredMatmulIsReadable) {
  Tensor a = placeholder({4, 4}, "A");
  Tensor b = placeholder({4, 4}, "B");
  IterVar k = reduce_axis(4, "k");
  Tensor c = compute(
      {4, 4}, "C",
      [&](const std::vector<Var>& i) {
        return sum(access(a, {i[0], k->var}) * access(b, {k->var, i[1]}),
                   {k->var});
      },
      {k});
  Schedule sched({c});
  const std::string text = to_string(lower(sched));
  // Init to 0 then accumulate.
  EXPECT_NE(text.find("= 0.0"), std::string::npos);
  EXPECT_NE(text.find("C["), std::string::npos);
  EXPECT_NE(text.find("for "), std::string::npos);
}

}  // namespace
}  // namespace tvmbo::te
