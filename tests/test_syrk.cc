// syrk extension kernel: reference vs tiled native vs TE pipeline, plus
// space/simulator/task wiring.
#include <gtest/gtest.h>

#include "configspace/divisors.h"
#include "kernels/native.h"
#include "kernels/polybench.h"
#include "kernels/reference.h"
#include "kernels/te_kernels.h"
#include "runtime/swing_sim.h"
#include "te/interp.h"

namespace tvmbo::kernels {
namespace {

using runtime::NDArray;

TEST(Syrk, ReferenceLeavesUpperTriangleUntouched) {
  const std::int64_t n = 10, m = 8;
  NDArray a({n, m}), c({n, n});
  init_syrk(a, c);
  const NDArray before = c;
  ref_syrk(a, c);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = i + 1; j < n; ++j)
      EXPECT_DOUBLE_EQ(c.at2(i, j), before.at2(i, j));
}

TEST(Syrk, ReferenceMatchesManualComputation) {
  const std::int64_t n = 6, m = 5;
  NDArray a({n, m}), c({n, n});
  init_syrk(a, c);
  const NDArray c0 = c;
  ref_syrk(a, c, 2.0, 3.0);
  // Spot-check one strictly-lower element and the diagonal.
  for (const auto [i, j] : {std::pair<std::int64_t, std::int64_t>{4, 2},
                            {3, 3},
                            {5, 0}}) {
    double acc = 0.0;
    for (std::int64_t k = 0; k < m; ++k) acc += a.at2(i, k) * a.at2(j, k);
    EXPECT_NEAR(c.at2(i, j), 3.0 * c0.at2(i, j) + 2.0 * acc, 1e-12);
  }
}

class SyrkTileSweep : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(SyrkTileSweep, TiledMatchesReference) {
  const auto [ty, tx] = GetParam();
  const std::int64_t n = 18, m = 11;
  NDArray a({n, m}), expected({n, n});
  init_syrk(a, expected);
  NDArray tiled = expected;
  ref_syrk(a, expected);
  syrk_tiled(a, tiled, ty, tx);
  EXPECT_TRUE(tiled.allclose(expected, 1e-10))
      << "ty=" << ty << " tx=" << tx;
}

INSTANTIATE_TEST_SUITE_P(
    Tiles, SyrkTileSweep,
    ::testing::Values(std::pair<int, int>{1, 1}, std::pair<int, int>{18, 18},
                      std::pair<int, int>{3, 6}, std::pair<int, int>{5, 4},
                      std::pair<int, int>{7, 7},
                      std::pair<int, int>{64, 2},
                      std::pair<int, int>{2, 64}));

TEST(Syrk, TeLowerTriangleMatchesReference) {
  const std::int64_t n = 8, m = 6;
  SyrkTensors t = make_syrk(n, m, 2.0, 3.0);
  NDArray a({n, m}), c({n, n});
  init_syrk(a, c);
  NDArray expected = c;
  ref_syrk(a, expected, 2.0, 3.0);

  te::Schedule sched = schedule_syrk(t, 4, 2);
  NDArray out({n, n});
  te::run_schedule(sched, {{t.A, &a}, {t.Cin, &c}, {t.Cout, &out}});
  // TE computes the whole output; the upper triangle must equal Cin and
  // the lower triangle the updated values.
  EXPECT_TRUE(out.allclose(expected, 1e-10));
}

TEST(Syrk, SpaceIsDivisorSquare) {
  const auto dims = polybench_dims("syrk", Dataset::kLarge);
  EXPECT_EQ(dims, (std::vector<std::int64_t>{1200, 1000}));
  const auto space = build_space("syrk", dims);
  EXPECT_EQ(space.cardinality(),
            cs::divisor_count(1200) * cs::divisor_count(1200));
}

TEST(Syrk, SimulatedSurfaceRespondsToTiles) {
  runtime::SwingSimDevice device;
  const auto workload = make_workload("syrk", Dataset::kLarge);
  const std::int64_t good[2] = {8, 96};
  const std::int64_t bad[2] = {1200, 1};
  EXPECT_LT(device.surface_runtime(workload, good),
            device.surface_runtime(workload, bad));
}

TEST(Syrk, SimulatedCheaperThanEquivalentGemm) {
  // syrk does half the flops of a gemm of the same output/depth shape.
  runtime::SwingSimDevice device;
  const auto syrk = make_workload("syrk", Dataset::kLarge);  // 1200, 1000
  runtime::Workload gemm;
  gemm.kernel = "gemm";
  gemm.size_name = "large";
  gemm.dims = {1200, 1200, 1000};
  gemm.flops = 2.0 * 1200 * 1200 * 1000;
  const std::int64_t tiles[2] = {8, 96};
  EXPECT_LT(device.model_runtime(syrk, tiles),
            device.model_runtime(gemm, tiles));
}

TEST(Syrk, ExecutableTaskRunsOnCpu) {
  autotvm::Task task = make_task(
      "syrk", "mini", polybench_dims("syrk", Dataset::kMini),
      /*executable=*/true);
  EXPECT_EQ(task.config.num_knobs(), 2u);
  cs::Configuration config = task.config.space().default_configuration();
  config.set_index(0, 2);
  const auto input = task.measure_input(config);
  ASSERT_TRUE(static_cast<bool>(input.run));
  input.run();  // must not throw
}

}  // namespace
}  // namespace tvmbo::kernels
