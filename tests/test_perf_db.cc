#include "runtime/perf_db.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace tvmbo::runtime {
namespace {

TrialRecord make_record(int index, const std::string& strategy,
                        double runtime, bool valid = true) {
  TrialRecord record;
  record.eval_index = index;
  record.strategy = strategy;
  record.workload_id = "lu/large[2000]";
  record.tiles = {400, 50};
  record.runtime_s = runtime;
  record.compile_s = 2.5;
  record.elapsed_s = 10.0 * (index + 1);
  record.valid = valid;
  return record;
}

TEST(PerfDb, BestPicksLowestValidRuntime) {
  PerfDatabase db;
  db.add(make_record(0, "ytopt", 3.0));
  db.add(make_record(1, "ytopt", 1.5));
  db.add(make_record(2, "ytopt", 0.5, /*valid=*/false));
  const auto best = db.best();
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->runtime_s, 1.5);
  EXPECT_EQ(best->eval_index, 1);
}

TEST(PerfDb, BestOfEmptyIsNullopt) {
  PerfDatabase db;
  EXPECT_FALSE(db.best().has_value());
  db.add(make_record(0, "x", 1.0, /*valid=*/false));
  EXPECT_FALSE(db.best().has_value());
}

TEST(PerfDb, BestForStrategy) {
  PerfDatabase db;
  db.add(make_record(0, "ytopt", 2.0));
  db.add(make_record(0, "autotvm-ga", 1.0));
  db.add(make_record(1, "ytopt", 1.8));
  const auto best = db.best_for("ytopt");
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->runtime_s, 1.8);
  EXPECT_FALSE(db.best_for("nope").has_value());
}

TEST(PerfDb, StrategiesInFirstAppearanceOrder) {
  PerfDatabase db;
  db.add(make_record(0, "b", 1.0));
  db.add(make_record(0, "a", 1.0));
  db.add(make_record(1, "b", 1.0));
  const auto strategies = db.strategies();
  ASSERT_EQ(strategies.size(), 2u);
  EXPECT_EQ(strategies[0], "b");
  EXPECT_EQ(strategies[1], "a");
}

TEST(PerfDb, TotalTimeIsLastElapsed) {
  PerfDatabase db;
  db.add(make_record(0, "ytopt", 2.0));
  db.add(make_record(1, "ytopt", 2.0));
  EXPECT_DOUBLE_EQ(db.total_time_for("ytopt"), 20.0);
  EXPECT_DOUBLE_EQ(db.total_time_for("nope"), 0.0);
}

TEST(PerfDb, JsonLinesRoundTrip) {
  PerfDatabase db;
  db.add(make_record(0, "ytopt", 1.659));
  db.add(make_record(1, "autotvm-xgb", 2.25, /*valid=*/false));
  const std::string text = db.to_json_lines();
  const PerfDatabase restored = PerfDatabase::from_json_lines(text);
  ASSERT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored.record(0).strategy, "ytopt");
  EXPECT_DOUBLE_EQ(restored.record(0).runtime_s, 1.659);
  EXPECT_EQ(restored.record(0).tiles, (std::vector<std::int64_t>{400, 50}));
  EXPECT_FALSE(restored.record(1).valid);
  EXPECT_EQ(restored.record(1).workload_id, "lu/large[2000]");
}

TEST(PerfDb, SaveLoadFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tvmbo_perfdb_test.jsonl")
          .string();
  PerfDatabase db;
  db.add(make_record(0, "ytopt", 1.0));
  db.save(path);
  const PerfDatabase loaded = PerfDatabase::load(path);
  EXPECT_EQ(loaded.size(), 1u);
  std::remove(path.c_str());
}

TEST(PerfDb, MalformedAndTruncatedLinesAreSkippedNotFatal) {
  PerfDatabase db;
  db.add(make_record(0, "ytopt", 1.0));
  db.add(make_record(1, "ytopt", 2.0));
  db.add(make_record(2, "ytopt", 3.0));
  const std::string lines = db.to_json_lines();

  // Corrupt the middle record (garbage), keep the others, and append a
  // truncated final line — the shape a run killed mid-write leaves behind.
  std::vector<std::string> split;
  std::size_t start = 0;
  for (std::size_t end = lines.find('\n'); end != std::string::npos;
       start = end + 1, end = lines.find('\n', start)) {
    split.push_back(lines.substr(start, end - start));
  }
  ASSERT_EQ(split.size(), 3u);
  std::string corrupted = split[0] + "\n";
  corrupted += "not json at all\n";
  corrupted += split[1] + "\n";
  corrupted += "{\"i\": 9, \"strategy\": \"x\"}\n";  // valid JSON, missing keys
  corrupted += "\n";                                  // blank line: ignored
  corrupted += split[2].substr(0, split[2].size() / 2);  // truncated tail

  const PerfDatabase restored = PerfDatabase::from_json_lines(corrupted);
  ASSERT_EQ(restored.size(), 2u);
  EXPECT_DOUBLE_EQ(restored.record(0).runtime_s, 1.0);
  EXPECT_DOUBLE_EQ(restored.record(1).runtime_s, 2.0);
}

TEST(PerfDb, CorruptFileLoadKeepsValidRecords) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tvmbo_perfdb_corrupt.jsonl")
          .string();
  PerfDatabase db;
  db.add(make_record(0, "ytopt", 1.0));
  db.save(path);
  {
    std::ofstream append(path, std::ios::app);
    append << "{\"i\": 1, \"strategy\": \"ytopt\", \"workload\"";  // truncated
  }
  const PerfDatabase loaded = PerfDatabase::load(path);
  EXPECT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.record(0).runtime_s, 1.0);
  std::remove(path.c_str());
}

TEST(PerfDb, LoadMissingFileThrows) {
  EXPECT_THROW(PerfDatabase::load("/nonexistent/path.jsonl"),
               tvmbo::CheckError);
}

TEST(PerfDb, RecordIndexOutOfRangeThrows) {
  PerfDatabase db;
  EXPECT_THROW(db.record(0), tvmbo::CheckError);
}

TEST(PerfDb, AppenderWritesLoadableRecords) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tvmbo_appender.jsonl")
          .string();
  std::remove(path.c_str());
  {
    PerfDbAppender appender(path);
    appender.append(make_record(0, "ytopt", 1.0));
    std::vector<TrialRecord> batch = {make_record(1, "ytopt", 2.0),
                                      make_record(2, "ytopt", 3.0)};
    appender.append_all(batch);
  }
  // A second appender on the same path extends, never truncates.
  {
    PerfDbAppender appender(path);
    appender.append(make_record(3, "ytopt", 4.0));
  }
  const PerfDatabase loaded = PerfDatabase::load(path);
  ASSERT_EQ(loaded.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(loaded.record(i).eval_index, static_cast<int>(i));
    EXPECT_DOUBLE_EQ(loaded.record(i).runtime_s, static_cast<double>(i + 1));
  }
  std::remove(path.c_str());
}

TEST(PerfDb, ConcurrentAppendersNeverTearRecords) {
  // The torn-write regression test: many threads, each with its *own*
  // appender on one shared path (the serve daemon's cross-tenant
  // database), hammer appends concurrently. Every record must survive
  // intact — no interleaved/torn lines — and every (writer, seq) pair
  // must appear exactly once.
  const std::string path =
      (std::filesystem::temp_directory_path() / "tvmbo_torn_write.jsonl")
          .string();
  std::remove(path.c_str());
  constexpr int kWriters = 8;
  constexpr int kRecords = 200;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&path, w] {
      PerfDbAppender appender(path);
      for (int i = 0; i < kRecords; ++i) {
        TrialRecord record = make_record(i, "writer-" + std::to_string(w),
                                         1.0 + 0.001 * i);
        // Encode (writer, seq) in the tiles so a spliced line can't
        // masquerade as a valid record from either writer.
        record.tiles = {w, i, w * 100000 + i};
        if (i % 16 == 0) {
          appender.append_all({&record, 1});  // exercise the flock path too
        } else {
          appender.append(record);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();

  const PerfDatabase loaded = PerfDatabase::load(path);
  ASSERT_EQ(loaded.size(),
            static_cast<std::size_t>(kWriters) * kRecords);  // nothing torn
  std::vector<std::vector<bool>> seen(kWriters,
                                      std::vector<bool>(kRecords, false));
  for (const TrialRecord& record : loaded.records()) {
    ASSERT_EQ(record.tiles.size(), 3u);
    const int w = static_cast<int>(record.tiles[0]);
    const int i = static_cast<int>(record.tiles[1]);
    ASSERT_GE(w, 0);
    ASSERT_LT(w, kWriters);
    ASSERT_GE(i, 0);
    ASSERT_LT(i, kRecords);
    EXPECT_EQ(record.tiles[2], w * 100000 + i);
    EXPECT_EQ(record.strategy, "writer-" + std::to_string(w));
    EXPECT_FALSE(seen[w][i]) << "duplicate record " << w << "/" << i;
    seen[w][i] = true;
  }
  std::remove(path.c_str());
}

TEST(PerfDb, SchemaV2MetadataRoundTrips) {
  PerfDatabase db;
  TrialRecord record = make_record(0, "ytopt", 1.5);
  record.backend = "jit";
  record.nthreads = 4;
  db.add(record);
  const PerfDatabase restored =
      PerfDatabase::from_json_lines(db.to_json_lines());
  ASSERT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored.record(0).schema, TrialRecord::kSchemaVersion);
  EXPECT_EQ(restored.record(0).backend, "jit");
  EXPECT_EQ(restored.record(0).nthreads, 4);
}

TEST(PerfDb, LegacyRecordsLoadWithDefaultedMetadata) {
  // A pre-v2 file: no "v", no backend, no nthreads. It must load (schema
  // stamped 1, metadata defaulted), not fail or mis-parse.
  const std::string legacy =
      "{\"i\": 0, \"strategy\": \"ytopt\", "
      "\"workload\": \"lu/large[2000]\", \"config\": [400, 50], "
      "\"runtime_s\": 1.25, \"compile_s\": 0.5, \"energy_j\": 0.0, "
      "\"elapsed_s\": 2.0, \"valid\": true}\n";
  const PerfDatabase loaded = PerfDatabase::from_json_lines(legacy);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.record(0).schema, 1);
  EXPECT_EQ(loaded.record(0).backend, "");
  EXPECT_EQ(loaded.record(0).nthreads, 1);
  EXPECT_DOUBLE_EQ(loaded.record(0).runtime_s, 1.25);
}

TEST(PerfDb, MixedFormatFileLoadsBothGenerations) {
  PerfDatabase db;
  TrialRecord modern = make_record(1, "ytopt", 2.0);
  modern.backend = "native";
  modern.nthreads = 2;
  db.add(modern);
  const std::string legacy =
      "{\"i\": 0, \"strategy\": \"ytopt\", "
      "\"workload\": \"lu/large[2000]\", \"config\": [400, 50], "
      "\"runtime_s\": 1.0, \"compile_s\": 0.0, \"energy_j\": 0.0, "
      "\"elapsed_s\": 1.0, \"valid\": true}\n";
  const PerfDatabase loaded =
      PerfDatabase::from_json_lines(legacy + db.to_json_lines());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.record(0).schema, 1);
  EXPECT_EQ(loaded.record(1).schema, TrialRecord::kSchemaVersion);
  EXPECT_EQ(loaded.record(1).backend, "native");
  EXPECT_EQ(loaded.record(1).nthreads, 2);
}

TEST(PerfDb, FutureSchemaVersionIsRejectedPerLine) {
  // A record stamped with a newer schema than this build understands is
  // skipped by the tolerant line loader, not silently half-parsed.
  PerfDatabase db;
  db.add(make_record(0, "ytopt", 1.0));
  std::string lines = db.to_json_lines();
  const std::string future =
      "{\"v\": 99, \"i\": 1, \"strategy\": \"ytopt\", "
      "\"workload\": \"lu/large[2000]\", \"config\": [400, 50], "
      "\"runtime_s\": 9.0, \"compile_s\": 0.0, \"energy_j\": 0.0, "
      "\"elapsed_s\": 1.0, \"valid\": true}\n";
  const PerfDatabase loaded =
      PerfDatabase::from_json_lines(lines + future);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.record(0).runtime_s, 1.0);
}

TEST(PerfDb, ByStrategyFilters) {
  PerfDatabase db;
  db.add(make_record(0, "a", 1.0));
  db.add(make_record(0, "b", 2.0));
  db.add(make_record(1, "a", 3.0));
  const auto records = db.by_strategy("a");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_DOUBLE_EQ(records[1].runtime_s, 3.0);
}

}  // namespace
}  // namespace tvmbo::runtime
