// compute_at: producer computation moved inside the consumer's loop nest
// with its needed region inferred symbolically. Semantics must match the
// detached schedule exactly; structure must show the attachment.
#include <gtest/gtest.h>

#include "kernels/reference.h"
#include "kernels/te_kernels.h"
#include "te/interp.h"
#include "te/compile.h"
#include "te/transform.h"
#include "te/printer.h"

namespace tvmbo::te {
namespace {

using runtime::NDArray;

struct ElementwisePipeline {
  Tensor a, b, c;  // b = a*2 (producer), c = b+1 (consumer)

  ElementwisePipeline(std::int64_t rows = 8, std::int64_t cols = 6) {
    a = placeholder({rows, cols}, "A");
    b = compute({rows, cols}, "B", [&](const std::vector<Var>& i) {
      return access(a, {i[0], i[1]}) * make_float(2.0);
    });
    c = compute({rows, cols}, "C", [&](const std::vector<Var>& i) {
      return access(b, {i[0], i[1]}) + make_float(1.0);
    });
  }
};

TEST(ComputeAt, ElementwiseProducerAtRowLoop) {
  ElementwisePipeline fx;
  Schedule sched({fx.c});
  Stage& consumer = sched[fx.c];
  sched[fx.b].compute_at(consumer, consumer.op_axis()[0]);

  const Stmt program = lower(sched);
  // B's loops live inside C's row loop now: the top-level Seq has one
  // stage statement, not two.
  const std::string text = to_string(program);
  EXPECT_NE(text.find("realize B"), std::string::npos);

  NDArray in({8, 6});
  for (std::int64_t i = 0; i < 8; ++i)
    for (std::int64_t j = 0; j < 6; ++j)
      in.set2(i, j, static_cast<double>(i * 10 + j));
  NDArray out({8, 6});
  Interpreter interp;
  interp.bind(fx.a, &in);
  interp.bind(fx.c, &out);
  interp.run(program);
  for (std::int64_t i = 0; i < 8; ++i)
    for (std::int64_t j = 0; j < 6; ++j)
      EXPECT_DOUBLE_EQ(out.at2(i, j), in.at2(i, j) * 2.0 + 1.0);
}

TEST(ComputeAt, RegionIsRestrictedToOneRow) {
  // Attached at the row loop, the producer should recompute exactly one
  // row per iteration: loop structure has B's column loop (extent 6) but
  // the row-region loop has extent 1 (width of i under fixed outer i).
  ElementwisePipeline fx;
  Schedule sched({fx.c});
  Stage& consumer = sched[fx.c];
  sched[fx.b].compute_at(consumer, consumer.op_axis()[0]);
  const Stmt program = lower(sched);

  // Count total stores when interpreted: C does 48 stores; B should do
  // 8 rows x (1 x 6) = 48 region stores — not 8 x 48 = 384 (full
  // recompute per row would be wrong/wasteful).
  NDArray in({8, 6}), out({8, 6});
  Interpreter interp;
  interp.bind(fx.a, &in);
  interp.bind(fx.c, &out);
  interp.run(program);
  EXPECT_EQ(interp.store_count(), 48u + 48u);
}

TEST(ComputeAt, MatchesDetachedScheduleOnTiledConsumer) {
  ElementwisePipeline fx(12, 10);
  NDArray in({12, 10});
  for (std::int64_t i = 0; i < 12; ++i)
    for (std::int64_t j = 0; j < 10; ++j)
      in.set2(i, j, static_cast<double>((3 * i + j) % 7));

  NDArray detached_out({12, 10});
  {
    Schedule sched({fx.c});
    Stage& consumer = sched[fx.c];
    auto [yo, yi] = consumer.split(consumer.op_axis()[0], 4);
    consumer.reorder({yo, consumer.op_axis()[1], yi});
    run_schedule(sched, {{fx.a, &in}, {fx.c, &detached_out}});
  }

  NDArray attached_out({12, 10});
  {
    Schedule sched({fx.c});
    Stage& consumer = sched[fx.c];
    auto [yo, yi] = consumer.split(consumer.op_axis()[0], 4);
    consumer.reorder({yo, consumer.op_axis()[1], yi});
    sched[fx.b].compute_at(consumer, yo);
    const Stmt program = lower(sched);
    validate(program);
    Interpreter interp;
    interp.bind(fx.a, &in);
    interp.bind(fx.c, &attached_out);
    interp.run(program);
  }
  EXPECT_TRUE(attached_out.allclose(detached_out, 0.0));
}

TEST(ComputeAt, ReductionProducerAttached) {
  // E = A*B (matmul) consumed by C = E + 1; attach E at C's row loop.
  const std::int64_t n = 6, k = 5;
  Tensor a = placeholder({n, k}, "A");
  Tensor b = placeholder({k, n}, "B");
  IterVar kk = reduce_axis(k, "k");
  Tensor e = compute(
      {n, n}, "E",
      [&](const std::vector<Var>& i) {
        return sum(access(a, {i[0], kk->var}) * access(b, {kk->var, i[1]}),
                   {kk->var});
      },
      {kk});
  Tensor c = compute({n, n}, "C", [&](const std::vector<Var>& i) {
    return access(e, {i[0], i[1]}) + make_float(1.0);
  });

  NDArray ma({n, k}), mb({k, n});
  kernels::init_gemm(ma, mb);
  NDArray expected({n, n});
  {
    Schedule plain({c});
    run_schedule(plain, {{a, &ma}, {b, &mb}, {c, &expected}});
  }
  NDArray out({n, n});
  {
    Schedule sched({c});
    Stage& consumer = sched[c];
    sched[e].compute_at(consumer, consumer.op_axis()[0]);
    const Stmt program = lower(sched);
    validate(program);
    Interpreter interp;
    interp.bind(a, &ma);
    interp.bind(b, &mb);
    interp.bind(c, &out);
    interp.run(program);
  }
  EXPECT_TRUE(out.allclose(expected, 0.0));
}

TEST(ComputeAt, NonAffineAccessFallsBackToFullRegion) {
  // Consumer reads B[i % 4, j]: modulo is non-affine, so the region for
  // dim 0 widens to the full extent — still correct.
  Tensor a = placeholder({4, 5}, "A");
  Tensor b = compute({4, 5}, "B", [&](const std::vector<Var>& i) {
    return access(a, {i[0], i[1]}) * make_float(3.0);
  });
  Tensor c = compute({8, 5}, "C", [&](const std::vector<Var>& i) {
    return access(b, {floor_mod(i[0], make_int(4)), i[1]});
  });
  Schedule sched({c});
  Stage& consumer = sched[c];
  sched[b].compute_at(consumer, consumer.op_axis()[0]);

  NDArray in({4, 5});
  for (std::int64_t i = 0; i < 4; ++i)
    for (std::int64_t j = 0; j < 5; ++j)
      in.set2(i, j, static_cast<double>(i + 10 * j));
  NDArray out({8, 5});
  const Stmt program = lower(sched);
  Interpreter interp;
  interp.bind(a, &in);
  interp.bind(c, &out);
  interp.run(program);
  for (std::int64_t i = 0; i < 8; ++i)
    for (std::int64_t j = 0; j < 5; ++j)
      EXPECT_DOUBLE_EQ(out.at2(i, j), in.at2(i % 4, j) * 3.0);
}

TEST(ComputeAt, RejectsAttachingOutput) {
  ElementwisePipeline fx;
  Schedule sched({fx.b, fx.c});  // B is an output here
  Stage& consumer = sched[fx.c];
  sched[fx.b].compute_at(consumer, consumer.op_axis()[0]);
  EXPECT_THROW(lower(sched), CheckError);
}

TEST(ComputeAt, RejectsMultiConsumerProducer) {
  Tensor a = placeholder({4}, "A");
  Tensor b = compute({4}, "B", [&](const std::vector<Var>& i) {
    return access(a, {i[0]}) * make_float(2.0);
  });
  Tensor c1 = compute({4}, "C1", [&](const std::vector<Var>& i) {
    return access(b, {i[0]}) + make_float(1.0);
  });
  Tensor c2 = compute({4}, "C2", [&](const std::vector<Var>& i) {
    return access(b, {i[0]}) - access(c1, {i[0]});
  });
  Schedule sched({c2});
  Stage& consumer = sched[c1];
  sched[b].compute_at(consumer, consumer.op_axis()[0]);
  EXPECT_THROW(lower(sched), CheckError);
}

TEST(ComputeAt, RejectsForeignLeaf) {
  ElementwisePipeline fx;
  Schedule sched({fx.c});
  Stage& producer = sched[fx.b];
  Stage& consumer = sched[fx.c];
  // A leaf of the producer is not a leaf of the consumer.
  EXPECT_THROW(producer.compute_at(consumer, producer.op_axis()[0]),
               CheckError);
}

TEST(ComputeAt, CompiledBackendAgrees) {
  ElementwisePipeline fx(10, 7);
  NDArray in({10, 7});
  in.fill(1.5);
  Schedule sched({fx.c});
  Stage& consumer = sched[fx.c];
  sched[fx.b].compute_at(consumer, consumer.op_axis()[0]);
  const Stmt program = lower(sched);

  NDArray via_interp({10, 7});
  Interpreter interp;
  interp.bind(fx.a, &in);
  interp.bind(fx.c, &via_interp);
  interp.run(program);

  NDArray via_compile({10, 7});
  // The compiled path allocates the Realize buffer itself.
  te::CompiledProgram::compile(program, {{fx.a, &in}, {fx.c, &via_compile}})
      .run();
  EXPECT_TRUE(via_compile.allclose(via_interp, 0.0));
}

TEST(ComputeAt, FusedThreeMmMatchesReference) {
  // The classic producer-fusion schedule TVM users write for 3mm: E and F
  // computed at G's outer row loop, so their tiles stream through cache
  // instead of materializing fully before G starts.
  const std::int64_t n = 6, l = 7, m = 8, o = 5, p = 4;
  kernels::ThreeMmTensors t = kernels::make_3mm(n, l, m, o, p);
  NDArray a({n, l}), b({l, m}), c({m, o}), d({o, p});
  kernels::init_3mm(a, b, c, d);
  NDArray e({n, m}), f({m, p}), expected({n, p});
  kernels::ref_3mm(a, b, c, d, e, f, expected);

  Schedule sched({t.G});
  Stage& g = sched[t.G];
  auto [yo, yi] = g.split(g.op_axis()[0], 2);
  g.reorder({yo, g.op_axis()[1], g.op_reduce_axis()[0], yi});
  sched[t.E].compute_at(g, yo);
  sched[t.F].compute_at(g, yo);

  const Stmt program = lower(sched);
  validate(program);
  NDArray out({n, p});
  Interpreter interp;
  interp.bind(t.A, &a);
  interp.bind(t.B, &b);
  interp.bind(t.C, &c);
  interp.bind(t.D, &d);
  interp.bind(t.G, &out);
  interp.run(program);
  EXPECT_TRUE(out.allclose(expected, 1e-10));
}

}  // namespace
}  // namespace tvmbo::te
