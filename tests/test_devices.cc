#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "common/logging.h"
#include "kernels/polybench.h"
#include "runtime/cpu_device.h"
#include "runtime/swing_sim.h"

namespace tvmbo::runtime {
namespace {

Workload lu_workload(std::int64_t n, const char* size = "large") {
  Workload w;
  w.kernel = "lu";
  w.size_name = size;
  w.dims = {n};
  w.flops = 2.0 / 3.0 * static_cast<double>(n) * n * n;
  return w;
}

TEST(Workload, IdFormatting) {
  const Workload w = kernels::make_workload("3mm", kernels::Dataset::kLarge);
  EXPECT_EQ(w.id(), "3mm/large[800x900x1000x1100x1200]");
}

TEST(CpuDevice, MeasuresRunAndCompile) {
  CpuDevice device;
  MeasureInput input;
  input.workload = lu_workload(8);
  input.tiles = {2, 2};
  int prepares = 0, runs = 0;
  input.prepare = [&] { ++prepares; };
  input.run = [&] {
    ++runs;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };
  MeasureOption option;
  option.repeat = 3;
  option.warmup = 1;
  const MeasureResult result = device.measure(input, option);
  EXPECT_TRUE(result.valid);
  EXPECT_EQ(prepares, 1);
  EXPECT_EQ(runs, 4);  // 1 warmup + 3 timed
  EXPECT_GE(result.runtime_s, 0.0015);
}

TEST(CpuDevice, TimeoutMarksInvalid) {
  CpuDevice device;
  MeasureInput input;
  input.workload = lu_workload(8);
  input.run = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  };
  MeasureOption option;
  option.repeat = 2;
  option.timeout_s = 0.001;
  const MeasureResult result = device.measure(input, option);
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.error.rfind("timeout", 0), 0u);
}

TEST(CpuDevice, WarmupRunsHonorTimeout) {
  // Regression: a pathological configuration used to stall the tuning
  // loop through untimed warmup runs, which ignored timeout_s entirely.
  CpuDevice device;
  MeasureInput input;
  input.workload = lu_workload(8);
  int runs = 0;
  input.run = [&runs] {
    ++runs;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  };
  MeasureOption option;
  option.repeat = 3;
  option.warmup = 5;
  option.timeout_s = 0.002;
  const MeasureResult result = device.measure(input, option);
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.error.rfind("timeout", 0), 0u);
  EXPECT_NE(result.error.find("warmup"), std::string::npos);
  EXPECT_EQ(runs, 1);  // aborted on the first warmup run
}

TEST(CpuDevice, TimeoutReportsMeanOfCompletedRuns) {
  // Regression: a late timeout used to report only the offending run's
  // elapsed time, discarding every completed repeat.
  CpuDevice device;
  MeasureInput input;
  input.workload = lu_workload(8);
  int calls = 0;
  input.run = [&calls] {
    ++calls;
    // Two fast runs, then one far over the timeout.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(calls <= 2 ? 1 : 50));
  };
  MeasureOption option;
  option.repeat = 3;
  option.timeout_s = 0.02;
  const MeasureResult result = device.measure(input, option);
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.error.rfind("timeout", 0), 0u);
  // The mean of the two completed ~1 ms runs, not the ~50 ms outlier.
  EXPECT_LT(result.runtime_s, 0.02);
  EXPECT_GT(result.runtime_s, 0.0);
}

TEST(CpuDevice, FirstRunTimeoutFallsBackToElapsed) {
  CpuDevice device;
  MeasureInput input;
  input.workload = lu_workload(8);
  input.run = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  };
  MeasureOption option;
  option.repeat = 3;
  option.timeout_s = 0.005;
  const MeasureResult result = device.measure(input, option);
  EXPECT_FALSE(result.valid);
  // No completed repeats: the offending run's elapsed time is the only
  // available estimate.
  EXPECT_GE(result.runtime_s, 0.02);
}

TEST(CpuDevice, ExceptionInKernelIsCaptured) {
  CpuDevice device;
  MeasureInput input;
  input.workload = lu_workload(8);
  input.run = [] { throw std::runtime_error("kernel exploded"); };
  const MeasureResult result = device.measure(input, MeasureOption{});
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.error, "kernel exploded");
}

TEST(CpuDevice, MissingRunnableThrows) {
  CpuDevice device;
  MeasureInput input;
  input.workload = lu_workload(8);
  EXPECT_THROW(device.measure(input, MeasureOption{}), tvmbo::CheckError);
}

TEST(SwingSim, DeterministicSurface) {
  SwingSimDevice a(1), b(2);  // different jitter seeds, same surface
  const Workload w = lu_workload(2000);
  const std::int64_t tiles[2] = {400, 50};
  EXPECT_DOUBLE_EQ(a.surface_runtime(w, tiles), b.surface_runtime(w, tiles));
}

TEST(SwingSim, MeasurementJitterIsSmall) {
  SwingSimDevice device(7);
  MeasureInput input;
  input.workload = lu_workload(2000);
  input.tiles = {400, 50};
  MeasureOption option;
  option.repeat = 3;
  const double surface =
      device.surface_runtime(input.workload, input.tiles);
  const MeasureResult result = device.measure(input, option);
  EXPECT_TRUE(result.valid);
  EXPECT_NEAR(result.runtime_s, surface, surface * 0.05);
  EXPECT_GT(result.compile_s, 0.0);
}

TEST(SwingSim, TileChoiceChangesRuntime) {
  SwingSimDevice device;
  const Workload w = lu_workload(2000);
  const std::int64_t good[2] = {16, 2000};
  const std::int64_t bad[2] = {2000, 1};
  EXPECT_LT(device.surface_runtime(w, good),
            device.surface_runtime(w, bad));
}

TEST(SwingSim, WorkScalesWithProblemSize) {
  SwingSimDevice device;
  const std::int64_t tiles[2] = {40, 32};
  const double large = device.model_runtime(lu_workload(2000), tiles);
  const double xlarge = device.model_runtime(
      lu_workload(4000, "extralarge"), tiles);
  // 8x the flops; calibration scales differ slightly, so allow a band.
  EXPECT_GT(xlarge / large, 5.0);
  EXPECT_LT(xlarge / large, 13.0);
}

TEST(SwingSim, CalibratedMinimaMatchPaper) {
  // The surface minimum over the paper's exact space must equal the best
  // runtime the paper reports (the calibration contract).
  SwingSimDevice device;
  struct Case {
    const char* kernel;
    kernels::Dataset dataset;
    double paper_best;
  };
  for (const Case& c :
       {Case{"lu", kernels::Dataset::kLarge, 1.659},
        Case{"lu", kernels::Dataset::kExtraLarge, 13.77},
        Case{"cholesky", kernels::Dataset::kLarge, 1.65},
        Case{"cholesky", kernels::Dataset::kExtraLarge, 13.99}}) {
    const Workload w = kernels::make_workload(c.kernel, c.dataset);
    const cs::ConfigurationSpace space =
        kernels::build_space(c.kernel, w.dims);
    double best = std::numeric_limits<double>::infinity();
    for (std::uint64_t flat = 0; flat < space.cardinality(); ++flat) {
      const auto tiles = space.values_int(space.from_flat_index(flat));
      best = std::min(best, device.surface_runtime(w, tiles));
    }
    EXPECT_NEAR(best, c.paper_best, c.paper_best * 0.02)
        << c.kernel << "/" << kernels::dataset_name(c.dataset);
  }
}

TEST(SwingSim, CholeskyCheaperThanLu) {
  // Half the flops in the trailing update -> consistently cheaper.
  SwingSimDevice device;
  const std::int64_t tiles[2] = {40, 32};
  Workload lu = lu_workload(2000);
  Workload chol = lu;
  chol.kernel = "cholesky";
  EXPECT_LT(device.model_runtime(chol, tiles) /
                device.model_runtime(lu, tiles),
            1.1);
}

TEST(SwingSim, ThreeMmUsesAllSixTiles) {
  SwingSimDevice device;
  const Workload w = kernels::make_workload("3mm", kernels::Dataset::kLarge);
  const std::int64_t base[6] = {10, 50, 20, 40, 24, 32};
  std::int64_t worse[6] = {10, 50, 20, 40, 24, 32};
  worse[4] = 800;  // de-tile the final stage only
  worse[5] = 1;
  EXPECT_LT(device.model_runtime(w, base), device.model_runtime(w, worse));
}

TEST(SwingSim, InvalidTileCountThrows) {
  SwingSimDevice device;
  const Workload w = lu_workload(2000);
  const std::int64_t three[3] = {1, 2, 3};
  EXPECT_THROW(device.model_runtime(w, three), tvmbo::CheckError);
  const std::int64_t nonpositive[2] = {0, 4};
  EXPECT_THROW(device.model_runtime(w, nonpositive), tvmbo::CheckError);
}

TEST(SwingSim, CompileTimeIsSecondsScale) {
  SwingSimDevice device;
  const Workload w = lu_workload(2000);
  const std::int64_t tiles[2] = {40, 32};
  const double compile = device.compile_time(w, tiles);
  EXPECT_GT(compile, 0.5);
  EXPECT_LT(compile, 10.0);
}

TEST(SwingSim, TimeoutHonored) {
  SwingSimDevice device;
  MeasureInput input;
  input.workload = lu_workload(2000);
  input.tiles = {2000, 1};  // pathologically slow configuration
  MeasureOption option;
  option.repeat = 1;
  option.timeout_s = 0.001;
  const MeasureResult result = device.measure(input, option);
  EXPECT_FALSE(result.valid);
}

TEST(MeasureResult, EvaluationCostCombinesCompileAndRepeats) {
  MeasureResult result;
  result.compile_s = 2.5;
  result.runtime_s = 1.5;
  MeasureOption option;
  option.repeat = 3;
  EXPECT_DOUBLE_EQ(result.evaluation_cost_s(option), 2.5 + 3 * 1.5);
}

TEST(MeasureResult, EvaluationCostChargesWarmupRuns) {
  // Regression: warmup executions burn the same wall-clock as timed ones
  // but used to be omitted, undercharging any warmup > 0 strategy.
  MeasureResult result;
  result.compile_s = 2.5;
  result.runtime_s = 1.5;
  MeasureOption option;
  option.repeat = 3;
  option.warmup = 2;
  EXPECT_DOUBLE_EQ(result.evaluation_cost_s(option),
                   2.5 + (2 + 3) * 1.5);
}

TEST(SwingSim, PlateauExponentCompressesSpread) {
  // With compression disabled the surface spreads out much further from
  // its minimum than with the default plateau model.
  SwingSimParams flat_params;
  SwingSimParams raw_params;
  raw_params.plateau_exponent = 1.0;
  SwingSimDevice flat(flat_params, 1);
  SwingSimDevice raw(raw_params, 1);
  const Workload w = lu_workload(2000);
  const std::int64_t good[2] = {25, 50};
  const std::int64_t bad[2] = {2000, 1};
  const double flat_ratio = flat.model_runtime(w, bad) /
                            flat.model_runtime(w, good);
  const double raw_ratio =
      raw.model_runtime(w, bad) / raw.model_runtime(w, good);
  // Per-stage compression is t^0.5, so the spread ratio roughly squares
  // when compression is disabled (approximate: stages sum, overheads add).
  EXPECT_GT(raw_ratio, flat_ratio * 1.2);
  EXPECT_NEAR(flat_ratio, std::sqrt(raw_ratio), 0.2);
}

TEST(SwingSim, NoiseSigmaZeroMakesSurfaceEqualModel) {
  SwingSimParams params;
  params.noise_sigma = 0.0;
  params.pathological_fraction = 0.0;
  SwingSimDevice device(params, 1);
  const Workload w = lu_workload(2000);
  const std::int64_t tiles[2] = {25, 50};
  EXPECT_DOUBLE_EQ(device.surface_runtime(w, tiles),
                   device.model_runtime(w, tiles));
}

TEST(SwingSim, PathologicalConfigsAreDeterministicallySlower) {
  // With pathological_fraction = 1, every config carries the 1.5x-5.5x
  // multiplier; the surface must be uniformly above the base model.
  SwingSimParams params;
  params.pathological_fraction = 1.0;
  SwingSimDevice device(params, 1);
  const Workload w = lu_workload(2000);
  Rng rng(5);
  const auto space = kernels::build_space("lu", w.dims);
  for (int i = 0; i < 30; ++i) {
    const auto tiles = space.values_int(space.sample(rng));
    const double ratio = device.surface_runtime(w, tiles) /
                         device.model_runtime(w, tiles);
    EXPECT_GE(ratio, 1.5);
    EXPECT_LE(ratio, 5.5);
  }
}

}  // namespace
}  // namespace tvmbo::runtime
