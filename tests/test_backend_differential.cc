// Differential testing of the execution tiers: every PolyBench TE kernel,
// on randomly sampled tile configurations, must produce bit-comparable
// float64 outputs through the interpreter, the closure compiler, and the
// JIT. The interpreter is the semantics oracle; agreement is exact (==),
// not within a tolerance — the JIT is compiled with -ffp-contract=off so
// the C compiler cannot reassociate or fuse what the oracle does not.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "codegen/jit_program.h"
#include "common/rng.h"
#include "common/timer.h"
#include "kernels/polybench.h"
#include "kernels/te_programs.h"
#include "runtime/exec_backend.h"

namespace tvmbo::kernels {
namespace {

using runtime::ExecBackend;

codegen::JitOptions test_options() {
  codegen::JitOptions options;
  options.cache_dir = testing::TempDir() + "tvmbo-differential-cache";
  return options;
}

/// Exact element-wise comparison with a first-mismatch diagnostic.
void expect_identical(const runtime::NDArray& a, const runtime::NDArray& b,
                      const std::string& label) {
  ASSERT_EQ(a.shape(), b.shape()) << label;
  std::span<const double> av = a.f64(), bv = b.f64();
  for (std::size_t i = 0; i < av.size(); ++i) {
    ASSERT_EQ(av[i], bv[i])
        << label << ": first mismatch at flat index " << i;
  }
}

/// Samples `count` configurations from the kernel's paper space and runs
/// each through all three IR-level backends.
void run_differential(const std::string& kernel, int count,
                      std::uint64_t seed) {
  const codegen::JitOptions options = test_options();
  const bool jit = codegen::JitProgram::toolchain_available(options);
  const std::vector<std::int64_t> dims =
      polybench_dims(kernel, Dataset::kMini);
  const cs::ConfigurationSpace space = build_space(kernel, dims);
  const auto data = make_te_kernel_data(kernel, dims);

  Rng rng(seed);
  for (int trial = 0; trial < count; ++trial) {
    const std::vector<std::int64_t> tiles =
        space.values_int(space.sample(rng));
    const std::string label = kernel + " trial " + std::to_string(trial);

    const runtime::NDArray oracle =
        run_te_backend(data, tiles, ExecBackend::kInterp);
    const runtime::NDArray closure =
        run_te_backend(data, tiles, ExecBackend::kClosure);
    expect_identical(oracle, closure, label + " (closure)");
    if (jit) {
      const runtime::NDArray jitted =
          run_te_backend(data, tiles, ExecBackend::kJit, options);
      expect_identical(oracle, jitted, label + " (jit)");
    }
  }
  if (!jit) {
    GTEST_SKIP() << "no C toolchain; interpreter/closure agreement checked";
  }
}

/// Parallel sweep: for each sampled tile configuration, annotate every
/// legal parallel axis and run the closure and JIT tiers at 1, 2, and
/// nproc threads. The serial interpreter on the un-annotated schedule is
/// the oracle; parallel chunks write disjoint output elements, so the
/// float64 results must stay bit-identical at every thread count.
void run_parallel_differential(const std::string& kernel, int count,
                               std::uint64_t seed) {
  const codegen::JitOptions options = test_options();
  const bool jit = codegen::JitProgram::toolchain_available(options);
  const std::vector<std::int64_t> dims =
      polybench_dims(kernel, Dataset::kMini);
  const cs::ConfigurationSpace space = build_space(kernel, dims);
  const auto data = make_te_kernel_data(kernel, dims);
  const std::size_t num_axes = te_num_parallel_axes(kernel);

  const std::int64_t nproc = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  std::vector<std::int64_t> thread_sweep{1, 2, nproc};
  std::sort(thread_sweep.begin(), thread_sweep.end());
  thread_sweep.erase(std::unique(thread_sweep.begin(), thread_sweep.end()),
                     thread_sweep.end());

  Rng rng(seed);
  for (int trial = 0; trial < count; ++trial) {
    const std::vector<std::int64_t> tiles =
        space.values_int(space.sample(rng));
    const runtime::NDArray oracle =
        run_te_backend(data, tiles, ExecBackend::kInterp);

    for (std::size_t axis = 1; axis <= num_axes; ++axis) {
      for (std::int64_t threads : thread_sweep) {
        std::vector<std::int64_t> extended = tiles;
        extended.push_back(static_cast<std::int64_t>(axis));
        extended.push_back(threads);
        const std::string label = kernel + " trial " +
                                  std::to_string(trial) + " axis " +
                                  std::to_string(axis) + " threads " +
                                  std::to_string(threads);

        const runtime::NDArray closure =
            run_te_backend(data, extended, ExecBackend::kClosure);
        expect_identical(oracle, closure, label + " (closure)");
        if (jit) {
          const runtime::NDArray jitted =
              run_te_backend(data, extended, ExecBackend::kJit, options);
          expect_identical(oracle, jitted, label + " (jit)");
        }
      }
    }
  }
  if (!jit) {
    GTEST_SKIP() << "no C toolchain; interpreter/closure agreement checked";
  }
}

/// One-line reproduction string for a sampled configuration: paste the
/// tile vector into `tvmbo_lint --kernel K --size mini --tiles ...` (or a
/// TeProgramInstance) to replay the exact schedule.
std::string repro_string(const std::string& kernel, std::uint64_t seed,
                         int trial, const std::vector<std::int64_t>& tiles) {
  std::string out = "repro: kernel=" + kernel +
                    " seed=" + std::to_string(seed) +
                    " trial=" + std::to_string(trial) + " tiles=";
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    out += (i == 0 ? "" : ",") + std::to_string(tiles[i]);
  }
  return out;
}

/// Widened-space sweep: sample configurations from the full schedule
/// space — tiles plus the parallel_axis/threads/vec_axis/unroll/pack
/// knobs — and demand float64 bit-identity across interp, closure, and
/// jit. The oracle is the interpreter on the base (knob-free) tiles, so
/// this also proves the new knobs are pure schedule transforms: they may
/// reorder work but never change a single output bit. Failure messages
/// carry a one-line repro string.
void run_schedule_combo_differential(const std::string& kernel, int count,
                                     std::uint64_t seed) {
  const codegen::JitOptions options = test_options();
  const bool jit = codegen::JitProgram::toolchain_available(options);
  const std::vector<std::int64_t> dims =
      polybench_dims(kernel, Dataset::kMini);
  ScheduleKnobs knobs;
  knobs.enabled = true;
  knobs.max_threads = 2;
  knobs.vectorize = true;
  knobs.unroll = true;
  knobs.pack = true;
  const cs::ConfigurationSpace space = build_space(kernel, dims, knobs);
  const std::size_t base = te_num_tiles(kernel);
  const auto data = make_te_kernel_data(kernel, dims);

  Rng rng(seed);
  for (int trial = 0; trial < count; ++trial) {
    const std::vector<std::int64_t> tiles =
        space.values_int(space.sample(rng));
    ASSERT_EQ(tiles.size(), base + 5u);
    const std::string repro = repro_string(kernel, seed, trial, tiles);

    const std::vector<std::int64_t> plain(tiles.begin(),
                                          tiles.begin() + base);
    const runtime::NDArray oracle =
        run_te_backend(data, plain, ExecBackend::kInterp);

    const runtime::NDArray interp =
        run_te_backend(data, tiles, ExecBackend::kInterp);
    expect_identical(oracle, interp, repro + " (interp)");
    const runtime::NDArray closure =
        run_te_backend(data, tiles, ExecBackend::kClosure);
    expect_identical(oracle, closure, repro + " (closure)");
    if (jit) {
      const runtime::NDArray jitted =
          run_te_backend(data, tiles, ExecBackend::kJit, options);
      expect_identical(oracle, jitted, repro + " (jit)");
    }
  }
  if (!jit) {
    GTEST_SKIP() << "no C toolchain; interpreter/closure agreement checked";
  }
}

TEST(BackendDifferential, ThreeMm) { run_differential("3mm", 4, 101); }
TEST(BackendDifferential, Gemm) { run_differential("gemm", 4, 102); }
TEST(BackendDifferential, TwoMm) { run_differential("2mm", 4, 103); }
TEST(BackendDifferential, Syrk) { run_differential("syrk", 4, 104); }
TEST(BackendDifferential, Lu) { run_differential("lu", 4, 105); }
TEST(BackendDifferential, Cholesky) { run_differential("cholesky", 4, 106); }

TEST(BackendDifferential, ParallelThreeMm) {
  run_parallel_differential("3mm", 2, 201);
}
TEST(BackendDifferential, ParallelGemm) {
  run_parallel_differential("gemm", 2, 202);
}
TEST(BackendDifferential, ParallelTwoMm) {
  run_parallel_differential("2mm", 2, 203);
}
TEST(BackendDifferential, ParallelSyrk) {
  run_parallel_differential("syrk", 2, 204);
}
TEST(BackendDifferential, ParallelLu) {
  run_parallel_differential("lu", 2, 205);
}
TEST(BackendDifferential, ParallelCholesky) {
  run_parallel_differential("cholesky", 2, 206);
}

TEST(BackendDifferential, ScheduleComboThreeMm) {
  run_schedule_combo_differential("3mm", 3, 301);
}
TEST(BackendDifferential, ScheduleComboGemm) {
  run_schedule_combo_differential("gemm", 4, 302);
}
TEST(BackendDifferential, ScheduleComboTwoMm) {
  run_schedule_combo_differential("2mm", 3, 303);
}
TEST(BackendDifferential, ScheduleComboSyrk) {
  run_schedule_combo_differential("syrk", 4, 304);
}
TEST(BackendDifferential, ScheduleComboLu) {
  run_schedule_combo_differential("lu", 4, 305);
}
TEST(BackendDifferential, ScheduleComboCholesky) {
  run_schedule_combo_differential("cholesky", 4, 306);
}

TEST(BackendDifferential, JitBeatsInterpreterOn3mm) {
  const codegen::JitOptions options = test_options();
  if (!codegen::JitProgram::toolchain_available(options)) {
    GTEST_SKIP() << "no C toolchain";
  }
  const std::vector<std::int64_t> dims =
      polybench_dims("3mm", Dataset::kSmall);
  const auto data = make_te_kernel_data("3mm", dims);
  const std::vector<std::int64_t> tiles = {10, 8, 10, 8, 10, 8};

  // Time run() only — compile time is accounted separately (and the
  // acceptance bar is about steady-state execution speed).
  runtime::MeasureInput interp = make_te_measure_input(
      data, make_workload("3mm", Dataset::kSmall), tiles,
      ExecBackend::kInterp);
  runtime::MeasureInput jit = make_te_measure_input(
      data, make_workload("3mm", Dataset::kSmall), tiles, ExecBackend::kJit,
      options);
  interp.prepare();
  jit.prepare();

  Stopwatch interp_timer;
  interp.run();
  const double interp_s = interp_timer.elapsed_seconds();

  jit.run();  // warm up (first call touches the freshly mapped pages)
  constexpr int kJitRuns = 10;
  Stopwatch jit_timer;
  for (int i = 0; i < kJitRuns; ++i) jit.run();
  const double jit_s = jit_timer.elapsed_seconds() / kJitRuns;

  EXPECT_GE(interp_s / jit_s, 10.0)
      << "interp " << interp_s << " s vs jit " << jit_s << " s";
}

TEST(BackendDifferential, SecondTuningPassHitsTheArtifactCache) {
  codegen::JitOptions options;
  options.cache_dir = testing::TempDir() + "tvmbo-differential-secondpass";
  if (!codegen::JitProgram::toolchain_available(options)) {
    GTEST_SKIP() << "no C toolchain";
  }
  const std::vector<std::int64_t> dims =
      polybench_dims("gemm", Dataset::kMini);
  const cs::ConfigurationSpace space = build_space("gemm", dims);
  const auto data = make_te_kernel_data("gemm", dims);

  std::vector<std::vector<std::int64_t>> configs;
  Rng rng(7);
  for (int i = 0; i < 6; ++i) {
    configs.push_back(space.values_int(space.sample(rng)));
  }

  codegen::ArtifactCache& cache = codegen::ArtifactCache::shared(options);
  for (const auto& tiles : configs) {
    run_te_backend(data, tiles, ExecBackend::kJit, options);
  }
  cache.reset_stats();  // second pass starts from a warm cache

  for (const auto& tiles : configs) {
    run_te_backend(data, tiles, ExecBackend::kJit, options);
  }
  const codegen::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_GE(stats.hit_rate(), 0.9);
}

}  // namespace
}  // namespace tvmbo::kernels
