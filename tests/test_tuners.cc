#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "configspace/divisors.h"
#include "tuners/ga_tuner.h"
#include "tuners/grid_tuner.h"
#include "tuners/random_tuner.h"
#include "tuners/xgb_tuner.h"

namespace tvmbo::tuners {
namespace {

cs::ConfigurationSpace small_space(std::int64_t extent = 2000) {
  cs::ConfigurationSpace space;
  space.add(cs::tile_factor_param("P0", extent));
  space.add(cs::tile_factor_param("P1", extent));
  return space;
}

// Smooth synthetic runtime surface with the optimum at indices (16, 9)
// (tiles 400x50 for extent 2000) — lower is better.
double synthetic_runtime(const cs::ConfigurationSpace& space,
                         const cs::Configuration& config) {
  const double i0 = static_cast<double>(config.index(0));
  const double i1 = static_cast<double>(config.index(1));
  return 1.0 + 0.01 * ((i0 - 16.0) * (i0 - 16.0) +
                       (i1 - 9.0) * (i1 - 9.0));
}

// Drives a tuner against the synthetic surface for `budget` evaluations.
double drive(Tuner& tuner, const cs::ConfigurationSpace& space,
             std::size_t budget, std::size_t batch = 8) {
  std::size_t evals = 0;
  while (evals < budget && tuner.has_next()) {
    const auto configs =
        tuner.next_batch(std::min(batch, budget - evals));
    if (configs.empty()) break;
    std::vector<Trial> trials;
    for (const auto& config : configs) {
      trials.push_back({config, synthetic_runtime(space, config), true});
    }
    tuner.update(trials);
    evals += trials.size();
  }
  return tuner.best() ? tuner.best()->runtime_s
                      : std::numeric_limits<double>::infinity();
}

TEST(RandomTuner, NoDuplicateProposals) {
  const auto space = small_space();
  RandomTuner tuner(&space, 1);
  std::set<std::uint64_t> seen;
  for (int round = 0; round < 10; ++round) {
    for (const auto& config : tuner.next_batch(16)) {
      EXPECT_TRUE(seen.insert(config.hash()).second);
    }
  }
  EXPECT_EQ(seen.size(), 160u);
}

TEST(RandomTuner, ExhaustsSmallSpaceExactly) {
  const auto space = small_space(8);  // 4x4 = 16 configs
  RandomTuner tuner(&space, 2);
  std::set<std::uint64_t> seen;
  while (tuner.has_next()) {
    const auto batch = tuner.next_batch(5);
    if (batch.empty()) break;
    for (const auto& config : batch) seen.insert(config.hash());
  }
  EXPECT_EQ(seen.size(), 16u);
  EXPECT_FALSE(tuner.has_next());
  EXPECT_TRUE(tuner.next_batch(4).empty());
}

TEST(RandomTuner, TracksBest) {
  const auto space = small_space();
  RandomTuner tuner(&space, 3);
  const double best = drive(tuner, space, 100);
  ASSERT_NE(tuner.best(), nullptr);
  EXPECT_DOUBLE_EQ(tuner.best()->runtime_s, best);
  EXPECT_EQ(tuner.history().size(), 100u);
}

TEST(GridSearchTuner, EnumeratesLexicographically) {
  const auto space = small_space();
  GridSearchTuner tuner(&space, 1);
  const auto batch = tuner.next_batch(25);
  ASSERT_EQ(batch.size(), 25u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(space.to_flat_index(batch[i]), i);
  }
}

TEST(GridSearchTuner, With100EvalsOnlyExploresCorner) {
  // The paper's structural reason grid search loses: 100 evals over a
  // 400-config space never move the most significant parameter past
  // index 5.
  const auto space = small_space();
  GridSearchTuner tuner(&space, 1);
  const auto batch = tuner.next_batch(100);
  for (const auto& config : batch) {
    EXPECT_LT(config.index(0), 5);
  }
}

TEST(GridSearchTuner, ExhaustionSetsHasNextFalse) {
  const auto space = small_space(8);
  GridSearchTuner tuner(&space, 1);
  EXPECT_EQ(tuner.next_batch(100).size(), 16u);
  EXPECT_FALSE(tuner.has_next());
}

TEST(GaTuner, EvolvesTowardOptimum) {
  const auto space = small_space();
  GaTuner tuner(&space, 4);
  const double best = drive(tuner, space, 120, 16);
  // Random exploration of 120/400 configs should be beaten handily by GA
  // with elitism; optimum is 1.0.
  EXPECT_LT(best, 1.15);
  EXPECT_GT(tuner.generation(), 3u);
}

TEST(GaTuner, ProposalsNeverRepeat) {
  const auto space = small_space();
  GaTuner tuner(&space, 5);
  std::set<std::uint64_t> seen;
  for (int round = 0; round < 12; ++round) {
    const auto batch = tuner.next_batch(16);
    std::vector<Trial> trials;
    for (const auto& config : batch) {
      EXPECT_TRUE(seen.insert(config.hash()).second);
      trials.push_back({config, synthetic_runtime(space, config), true});
    }
    tuner.update(trials);
  }
}

TEST(GaTuner, HandlesSpaceSmallerThanPopulation) {
  const auto space = small_space(4);  // 3x3 = 9 configs
  GaTuner tuner(&space, 6, GaOptions{.population_size = 16});
  std::set<std::uint64_t> seen;
  for (int round = 0; round < 10; ++round) {
    const auto batch = tuner.next_batch(8);
    if (batch.empty()) break;
    std::vector<Trial> trials;
    for (const auto& config : batch) {
      seen.insert(config.hash());
      trials.push_back({config, synthetic_runtime(space, config), true});
    }
    tuner.update(trials);
  }
  EXPECT_EQ(seen.size(), 9u);
}

TEST(GaTuner, InvalidOptionsThrow) {
  const auto space = small_space();
  EXPECT_THROW(GaTuner(&space, 1, GaOptions{.population_size = 1}),
               CheckError);
  EXPECT_THROW(GaTuner(&space, 1,
                       GaOptions{.population_size = 4, .elite_count = 4}),
               CheckError);
}

TEST(XgbTuner, TrainsModelAfterWarmup) {
  const auto space = small_space();
  XgbTuner tuner(&space, 7);
  EXPECT_FALSE(tuner.model_ready());
  drive(tuner, space, 40);
  EXPECT_TRUE(tuner.model_ready());
}

TEST(XgbTuner, ModelGuidedSearchBeatsPureRandom) {
  const auto space = small_space();
  XgbTuner xgb(&space, 8);
  const double xgb_best = drive(xgb, space, 64);
  RandomTuner random(&space, 8);
  const double random_best = drive(random, space, 64);
  EXPECT_LE(xgb_best, random_best + 0.05);
  EXPECT_LT(xgb_best, 1.2);
}

TEST(XgbTuner, PredictionCorrelatesWithSurface) {
  const auto space = small_space();
  XgbTuner tuner(&space, 9);
  drive(tuner, space, 80);
  ASSERT_TRUE(tuner.model_ready());
  Rng rng(10);
  double err = 0.0;
  int count = 0;
  for (int i = 0; i < 50; ++i) {
    const auto config = space.sample(rng);
    err += std::fabs(tuner.predicted_runtime(config) -
                     synthetic_runtime(space, config));
    ++count;
  }
  EXPECT_LT(err / count, 0.5);
}

TEST(XgbTuner, PaperEvalCapQuirk) {
  const auto space = small_space();
  XgbOptions options;
  options.paper_eval_cap = 56;  // the paper's observed artifact
  XgbTuner tuner(&space, 10, options);
  std::size_t total = 0;
  while (tuner.has_next()) {
    const auto batch = tuner.next_batch(8);
    if (batch.empty()) break;
    std::vector<Trial> trials;
    for (const auto& config : batch) {
      trials.push_back({config, synthetic_runtime(space, config), true});
    }
    tuner.update(trials);
    total += batch.size();
  }
  EXPECT_EQ(total, 56u);
  EXPECT_FALSE(tuner.has_next());
}

TEST(Tuner, UpdateTracksBestAcrossInvalid) {
  const auto space = small_space();
  RandomTuner tuner(&space, 11);
  const auto configs = tuner.next_batch(3);
  std::vector<Trial> trials{{configs[0], 5.0, true},
                            {configs[1], 1.0, false},
                            {configs[2], 3.0, true}};
  tuner.update(trials);
  ASSERT_NE(tuner.best(), nullptr);
  EXPECT_DOUBLE_EQ(tuner.best()->runtime_s, 3.0);
}

TEST(Tuner, NullSpaceThrows) {
  EXPECT_THROW(RandomTuner(nullptr, 1), CheckError);
}

}  // namespace
}  // namespace tvmbo::tuners
