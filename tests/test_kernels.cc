// Numerical-correctness tests for the kernel library: references vs. TE
// programs vs. tiled native kernels, including property sweeps over tile
// factors (the invariant the autotuner depends on: configuration changes
// performance, never results).
#include <gtest/gtest.h>

#include "kernels/native.h"
#include "kernels/reference.h"
#include "kernels/te_kernels.h"
#include "te/interp.h"

namespace tvmbo::kernels {
namespace {

using runtime::NDArray;

TEST(Reference, LuResidualSmall) {
  const std::int64_t n = 24;
  NDArray a({n, n});
  init_lu(a);
  const NDArray original = a;
  ref_lu(a);
  EXPECT_LT(lu_residual(a, original), 1e-9);
}

TEST(Reference, CholeskyResidualSmall) {
  const std::int64_t n = 24;
  NDArray a({n, n});
  init_spd(a);
  const NDArray original = a;
  ref_cholesky(a);
  EXPECT_LT(cholesky_residual(a, original), 1e-9);
}

TEST(Reference, CholeskyZeroesUpperTriangle) {
  const std::int64_t n = 8;
  NDArray a({n, n});
  init_spd(a);
  ref_cholesky(a);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = i + 1; j < n; ++j)
      EXPECT_DOUBLE_EQ(a.at2(i, j), 0.0);
}

TEST(Reference, LuRejectsSingularMatrix) {
  NDArray a({4, 4});  // all zeros -> zero pivot
  EXPECT_THROW(ref_lu(a), CheckError);
}

TEST(Reference, CholeskyRejectsNonSpd) {
  NDArray a({4, 4});
  a.fill(0.0);
  a.set2(0, 0, -1.0);
  EXPECT_THROW(ref_cholesky(a), CheckError);
}

TEST(Reference, ThreeMmMatchesManualComposition) {
  const std::int64_t n = 5, l = 6, m = 7, o = 4, p = 3;
  NDArray a({n, l}), b({l, m}), c({m, o}), d({o, p});
  init_3mm(a, b, c, d);
  NDArray e({n, m}), f({m, p}), g({n, p});
  ref_3mm(a, b, c, d, e, f, g);
  NDArray g2({n, p});
  ref_matmul(e, f, g2);
  EXPECT_TRUE(g.allclose(g2, 1e-12));
}

// --- tiled native kernels vs references -------------------------------------

class LuTileSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(LuTileSweep, TiledLuMatchesReference) {
  const auto [ty, tx] = GetParam();
  const std::int64_t n = 20;
  NDArray reference({n, n});
  init_lu(reference);
  NDArray tiled = reference;
  ref_lu(reference);
  lu_tiled(tiled, ty, tx);
  EXPECT_TRUE(tiled.allclose(reference, 1e-10))
      << "ty=" << ty << " tx=" << tx;
}

class CholTileSweep : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(CholTileSweep, TiledCholeskyMatchesReference) {
  const auto [ty, tx] = GetParam();
  const std::int64_t n = 20;
  NDArray reference({n, n});
  init_spd(reference);
  NDArray tiled = reference;
  ref_cholesky(reference);
  cholesky_tiled(tiled, ty, tx);
  EXPECT_TRUE(tiled.allclose(reference, 1e-10))
      << "ty=" << ty << " tx=" << tx;
}

std::vector<std::pair<int, int>> factorization_tiles() {
  // Divisors, non-divisors, degenerate, and over-sized tiles.
  return {{1, 1},  {1, 20}, {20, 1}, {4, 5},  {5, 4},
          {3, 7},  {20, 20}, {64, 64}, {2, 10}, {7, 3}};
}

INSTANTIATE_TEST_SUITE_P(Tiles, LuTileSweep,
                         ::testing::ValuesIn(factorization_tiles()));
INSTANTIATE_TEST_SUITE_P(Tiles, CholTileSweep,
                         ::testing::ValuesIn(factorization_tiles()));

TEST(Native, MatmulTiledMatchesReference) {
  const std::int64_t m = 17, n = 13, k = 9;
  NDArray a({m, k}), b({k, n});
  init_gemm(a, b);
  NDArray expected({m, n});
  ref_matmul(a, b, expected);
  for (const auto [ty, tx] : factorization_tiles()) {
    NDArray c({m, n});
    matmul_tiled(a, b, c, ty, tx);
    EXPECT_TRUE(c.allclose(expected, 1e-10)) << "ty=" << ty << " tx=" << tx;
  }
}

TEST(Native, ThreeMmTiledMatchesReference) {
  const std::int64_t n = 8, l = 9, m = 10, o = 11, p = 12;
  NDArray a({n, l}), b({l, m}), c({m, o}), d({o, p});
  init_3mm(a, b, c, d);
  NDArray e({n, m}), f({m, p}), g({n, p});
  ref_3mm(a, b, c, d, e, f, g);
  NDArray e2({n, m}), f2({m, p}), g2({n, p});
  const std::int64_t tiles[6] = {3, 5, 2, 7, 4, 6};
  threemm_tiled(a, b, c, d, e2, f2, g2, tiles);
  EXPECT_TRUE(g2.allclose(g, 1e-10));
}

TEST(Native, TwoMmTiledMatchesReference) {
  const std::int64_t ni = 7, nj = 8, nk = 9, nl = 6;
  NDArray a({ni, nk}), b({nk, nj}), c({nj, nl});
  init_gemm(a, b);
  NDArray c_init({nj, nl});
  for (std::int64_t i = 0; i < nj; ++i)
    for (std::int64_t j = 0; j < nl; ++j)
      c_init.set2(i, j, static_cast<double>((i + 2 * j) % 5) / 5.0);
  c = c_init;
  NDArray tmp({ni, nj}), d({ni, nl});
  ref_2mm(a, b, c, tmp, d);
  NDArray tmp2({ni, nj}), d2({ni, nl});
  const std::int64_t tiles[4] = {2, 3, 5, 2};
  twomm_tiled(a, b, c, tmp2, d2, tiles);
  EXPECT_TRUE(d2.allclose(d, 1e-10));
}

// --- TE programs vs references ----------------------------------------------

TEST(TeKernels, ThreeMmUnscheduledMatchesReference) {
  const std::int64_t n = 6, l = 7, m = 8, o = 5, p = 4;
  ThreeMmTensors t = make_3mm(n, l, m, o, p);
  NDArray a({n, l}), b({l, m}), c({m, o}), d({o, p});
  init_3mm(a, b, c, d);
  NDArray e({n, m}), f({m, p}), expected({n, p});
  ref_3mm(a, b, c, d, e, f, expected);

  te::Schedule sched({t.G});
  NDArray g({n, p});
  te::run_schedule(sched,
                   {{t.A, &a}, {t.B, &b}, {t.C, &c}, {t.D, &d}, {t.G, &g}});
  EXPECT_TRUE(g.allclose(expected, 1e-10));
}

class ThreeMmScheduleSweep
    : public ::testing::TestWithParam<std::array<std::int64_t, 6>> {};

TEST_P(ThreeMmScheduleSweep, ScheduledMatchesReference) {
  const auto tiles = GetParam();
  const std::int64_t n = 6, l = 7, m = 8, o = 5, p = 4;
  ThreeMmTensors t = make_3mm(n, l, m, o, p);
  NDArray a({n, l}), b({l, m}), c({m, o}), d({o, p});
  init_3mm(a, b, c, d);
  NDArray e({n, m}), f({m, p}), expected({n, p});
  ref_3mm(a, b, c, d, e, f, expected);

  te::Schedule sched = schedule_3mm(t, tiles);
  NDArray g({n, p});
  te::run_schedule(sched,
                   {{t.A, &a}, {t.B, &b}, {t.C, &c}, {t.D, &d}, {t.G, &g}});
  EXPECT_TRUE(g.allclose(expected, 1e-10));
}

INSTANTIATE_TEST_SUITE_P(
    TileVectors, ThreeMmScheduleSweep,
    ::testing::Values(std::array<std::int64_t, 6>{1, 1, 1, 1, 1, 1},
                      std::array<std::int64_t, 6>{2, 4, 4, 2, 3, 2},
                      std::array<std::int64_t, 6>{3, 5, 7, 3, 2, 3},
                      std::array<std::int64_t, 6>{6, 8, 8, 4, 6, 4},
                      std::array<std::int64_t, 6>{100, 100, 100, 100, 100,
                                                  100},
                      std::array<std::int64_t, 6>{5, 3, 6, 2, 4, 3}));

TEST(TeKernels, GemmScheduledMatchesReference) {
  GemmTensors t = make_gemm(9, 7, 11);
  NDArray a({9, 11}), b({11, 7});
  init_gemm(a, b);
  NDArray expected({9, 7});
  ref_matmul(a, b, expected);
  te::Schedule sched = schedule_gemm(t, 4, 3);
  NDArray c({9, 7});
  te::run_schedule(sched, {{t.A, &a}, {t.B, &b}, {t.C, &c}});
  EXPECT_TRUE(c.allclose(expected, 1e-10));
}

TEST(TeKernels, TwoMmScheduledMatchesReference) {
  TwoMmTensors t = make_2mm(6, 7, 8, 5);
  NDArray a({6, 8}), b({8, 7}), c({7, 5});
  init_gemm(a, b);
  for (std::int64_t i = 0; i < 7; ++i)
    for (std::int64_t j = 0; j < 5; ++j)
      c.set2(i, j, static_cast<double>((3 * i + j) % 4));
  NDArray tmp({6, 7}), expected({6, 5});
  ref_2mm(a, b, c, tmp, expected);
  const std::int64_t tiles[4] = {2, 3, 3, 2};
  te::Schedule sched = schedule_2mm(t, tiles);
  NDArray d({6, 5});
  te::run_schedule(sched, {{t.A, &a}, {t.B, &b}, {t.C, &c}, {t.D, &d}});
  EXPECT_TRUE(d.allclose(expected, 1e-10));
}

TEST(TeKernels, LuProgramMatchesReference) {
  const std::int64_t n = 12;
  te::Tensor a = te::placeholder({n, n}, "A");
  const te::Stmt program = build_lu_program(a, n);
  NDArray work({n, n});
  init_lu(work);
  NDArray expected = work;
  ref_lu(expected);
  te::Interpreter interp;
  interp.bind(a, &work);
  interp.run(program);
  EXPECT_TRUE(work.allclose(expected, 1e-10));
}

TEST(TeKernels, CholeskyProgramMatchesReferenceLowerTriangle) {
  const std::int64_t n = 12;
  te::Tensor a = te::placeholder({n, n}, "A");
  const te::Stmt program = build_cholesky_program(a, n);
  NDArray work({n, n});
  init_spd(work);
  NDArray expected = work;
  ref_cholesky(expected);
  te::Interpreter interp;
  interp.bind(a, &work);
  interp.run(program);
  // The IR program leaves the upper triangle untouched; compare lower.
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j <= i; ++j)
      EXPECT_NEAR(work.at2(i, j), expected.at2(i, j), 1e-10)
          << "(" << i << "," << j << ")";
}

TEST(TeKernels, LuProgramRejectsWrongShape) {
  te::Tensor a = te::placeholder({4, 5}, "A");
  EXPECT_THROW(build_lu_program(a, 4), CheckError);
  te::Tensor square = te::placeholder({4, 4}, "A");
  EXPECT_THROW(build_lu_program(square, 5), CheckError);
}

}  // namespace
}  // namespace tvmbo::kernels
