// compute_inline: inlined stages disappear from the lowered program (no
// loops, no Realize) and their values are substituted into consumers.
#include <gtest/gtest.h>

#include "kernels/reference.h"
#include "te/interp.h"
#include "te/printer.h"

namespace tvmbo::te {
namespace {

using runtime::NDArray;

struct Pipeline {
  Tensor a, scaled, shifted;

  Pipeline() {
    a = placeholder({4, 4}, "A");
    scaled = compute({4, 4}, "scaled", [&](const std::vector<Var>& i) {
      return access(a, {i[0], i[1]}) * make_float(2.0);
    });
    shifted = compute({4, 4}, "shifted", [&](const std::vector<Var>& i) {
      return access(scaled, {i[0], i[1]}) + make_float(1.0);
    });
  }
};

TEST(ComputeInline, RemovesStageAndRealize) {
  Pipeline fx;
  Schedule sched({fx.shifted});
  sched[fx.scaled].compute_inline();
  const Stmt program = lower(sched);
  EXPECT_EQ(count_stmts(program, StmtKind::kRealize), 0u);
  EXPECT_EQ(count_stmts(program, StmtKind::kStore), 1u);
  // The inlined multiply appears in the consumer's store.
  EXPECT_NE(to_string(program).find("*2.0"), std::string::npos);
}

TEST(ComputeInline, ValuesUnchanged) {
  Pipeline fx;
  NDArray in({4, 4});
  in.fill(3.0);

  Schedule plain({fx.shifted});
  NDArray out_plain({4, 4});
  run_schedule(plain, {{fx.a, &in}, {fx.shifted, &out_plain}});

  Schedule inlined({fx.shifted});
  inlined[fx.scaled].compute_inline();
  NDArray out_inlined({4, 4});
  run_schedule(inlined, {{fx.a, &in}, {fx.shifted, &out_inlined}});

  EXPECT_TRUE(out_plain.allclose(out_inlined));
  EXPECT_DOUBLE_EQ(out_inlined.at2(0, 0), 7.0);  // 3*2 + 1
}

TEST(ComputeInline, ChainOfInlinedStagesCollapses) {
  Tensor a = placeholder({4}, "A");
  Tensor b = compute({4}, "B", [&](const std::vector<Var>& i) {
    return access(a, {i[0]}) + make_float(1.0);
  });
  Tensor c = compute({4}, "C", [&](const std::vector<Var>& i) {
    return access(b, {i[0]}) * make_float(3.0);
  });
  Tensor d = compute({4}, "D", [&](const std::vector<Var>& i) {
    return access(c, {i[0]}) - make_float(2.0);
  });
  Schedule sched({d});
  sched[b].compute_inline();
  sched[c].compute_inline();
  const Stmt program = lower(sched);
  EXPECT_EQ(count_stmts(program, StmtKind::kStore), 1u);
  NDArray in({4});
  in.fill(5.0);
  NDArray out({4});
  Interpreter interp;
  interp.bind(a, &in);
  interp.bind(d, &out);
  interp.run(program);
  for (double v : out.f64()) EXPECT_DOUBLE_EQ(v, (5.0 + 1.0) * 3.0 - 2.0);
}

TEST(ComputeInline, InlineIntoReductionConsumer) {
  // B = A + 1 inlined into a matmul-like reduction over B.
  Tensor a = placeholder({3, 5}, "A");
  Tensor b = compute({3, 5}, "B", [&](const std::vector<Var>& i) {
    return access(a, {i[0], i[1]}) + make_float(1.0);
  });
  IterVar k = reduce_axis(5, "k");
  Tensor c = compute(
      {3}, "C",
      [&](const std::vector<Var>& i) {
        return sum(access(b, {i[0], k->var}), {k->var});
      },
      {k});
  Schedule sched({c});
  sched[b].compute_inline();
  NDArray in({3, 5});
  in.fill(2.0);
  NDArray out({3});
  run_schedule(sched, {{a, &in}, {c, &out}});
  for (double v : out.f64()) EXPECT_DOUBLE_EQ(v, 5.0 * 3.0);  // 5*(2+1)
}

TEST(ComputeInline, IndexExpressionsSubstituteCorrectly) {
  // The consumer reads the producer transposed; indices must follow.
  Tensor a = placeholder({3, 4}, "A");
  Tensor b = compute({3, 4}, "B", [&](const std::vector<Var>& i) {
    return access(a, {i[0], i[1]}) * make_float(10.0);
  });
  Tensor c = compute({4, 3}, "C", [&](const std::vector<Var>& i) {
    return access(b, {i[1], i[0]});  // transpose read
  });
  Schedule sched({c});
  sched[b].compute_inline();
  NDArray in({3, 4});
  for (std::int64_t i = 0; i < 3; ++i)
    for (std::int64_t j = 0; j < 4; ++j)
      in.set2(i, j, static_cast<double>(10 * i + j));
  NDArray out({4, 3});
  run_schedule(sched, {{a, &in}, {c, &out}});
  for (std::int64_t i = 0; i < 4; ++i)
    for (std::int64_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(out.at2(i, j), 10.0 * (10 * j + i));
}

TEST(ComputeInline, RejectsReductionStage) {
  Tensor a = placeholder({4}, "A");
  IterVar k = reduce_axis(4, "k");
  Tensor s = compute(
      {1}, "S",
      [&](const std::vector<Var>&) {
        return sum(access(a, {k->var}), {k->var});
      },
      {k});
  Tensor c = compute({1}, "C", [&](const std::vector<Var>& i) {
    return access(s, {i[0]}) * make_float(2.0);
  });
  Schedule sched({c});
  EXPECT_THROW(sched[s].compute_inline(), CheckError);
}

TEST(ComputeInline, RejectsInliningOutput) {
  Pipeline fx;
  Schedule sched({fx.shifted});
  sched[fx.shifted].compute_inline();
  EXPECT_THROW(lower(sched), CheckError);
}

TEST(ComputeInline, InlinedProducerKeepsOwnSchedulesIrrelevant) {
  // Splitting an inlined stage has no effect on the lowered program.
  Pipeline fx;
  Schedule sched({fx.shifted});
  Stage& stage = sched[fx.scaled];
  stage.split(stage.op_axis()[0], 2);
  stage.compute_inline();
  const Stmt program = lower(sched);
  EXPECT_EQ(count_stmts(program, StmtKind::kFor), 2u);  // consumer only
}

}  // namespace
}  // namespace tvmbo::te
