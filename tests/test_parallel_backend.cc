// The parallel schedule primitive, end to end: lowering-time legality
// (the analysis/ race prover gates concurrent loop kinds — reductions
// stay serial, overlapping compute_at recomputation is rejected), the
// closure tier's thread-pool dispatch, the JIT tier's OpenMP emission,
// and run-to-run determinism — all against the serial interpreter as the
// bit-exactness oracle. Parallel chunks write disjoint output elements,
// so every thread count must reproduce the serial float64 bits exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "codegen/c_emitter.h"
#include "codegen/jit_program.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "framework/session.h"
#include "kernels/polybench.h"
#include "kernels/te_kernels.h"
#include "kernels/te_programs.h"
#include "runtime/cpu_device.h"
#include "runtime/exec_backend.h"
#include "te/loop_transform.h"
#include "te/lower.h"
#include "te/transform.h"

namespace tvmbo {
namespace {

using runtime::ExecBackend;

codegen::JitOptions parallel_test_options(const std::string& subdir) {
  codegen::JitOptions options;
  options.cache_dir = testing::TempDir() + "tvmbo-parallel-" + subdir;
  return options;
}

void expect_bits_equal(const runtime::NDArray& a, const runtime::NDArray& b,
                       const std::string& label) {
  ASSERT_EQ(a.shape(), b.shape()) << label;
  std::span<const double> av = a.f64(), bv = b.f64();
  for (std::size_t i = 0; i < av.size(); ++i) {
    ASSERT_EQ(av[i], bv[i]) << label << ": flat index " << i;
  }
}

std::int64_t nproc() {
  return std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::thread::hardware_concurrency()));
}

// --- lowering-time legality --------------------------------------------------

TEST(ParallelLowering, ReductionAxisIsRejected) {
  kernels::GemmTensors t = kernels::make_gemm(6, 7, 5);
  te::Schedule sched({t.C});
  te::Stage& stage = sched[t.C];
  stage.parallel(stage.op_reduce_axis()[0]);
  EXPECT_THROW(te::lower(sched), CheckError);
}

TEST(ParallelLowering, SplitChildOfReductionAxisIsRejected) {
  // Split children inherit the parent's IterKind, so annotating the outer
  // half of a split reduction axis must be rejected too.
  kernels::GemmTensors t = kernels::make_gemm(8, 8, 8);
  te::Schedule sched({t.C});
  te::Stage& stage = sched[t.C];
  auto [ko, ki] = stage.split(stage.op_reduce_axis()[0], 2);
  (void)ki;
  stage.parallel(ko);
  EXPECT_THROW(te::lower(sched), CheckError);
}

TEST(ParallelLowering, VectorizedReductionAxisIsRejected) {
  // kVectorized is a concurrent kind too (the JIT tier emits omp simd):
  // vectorizing a reduction axis makes every lane RMW the same
  // accumulator element, and the race prover must reject it just like
  // kParallel — previously this was silently accepted.
  kernels::GemmTensors t = kernels::make_gemm(6, 7, 5);
  te::Schedule sched({t.C});
  te::Stage& stage = sched[t.C];
  stage.vectorize(stage.op_reduce_axis()[0]);
  try {
    te::lower(sched);
    FAIL() << "expected the race prover to reject the schedule";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("parallel-loop-race"),
              std::string::npos)
        << e.what();
  }
}

TEST(ParallelLowering, ComputeAtInsideParallelLoopProvenWhenRowDisjoint) {
  // A producer attached at a parallel loop is recomputed per iteration
  // into one shared root-realized buffer. When each iteration writes and
  // reads only its own row of that buffer, the recomputation is disjoint
  // across threads and the race prover admits it — the old hand-written
  // assert rejected this combination conservatively.
  te::Tensor a = te::placeholder({8, 6}, "A");
  te::Tensor b =
      te::compute({8, 6}, "B", [&](const std::vector<te::Var>& i) {
        return te::access(a, {i[0], i[1]}) * te::make_float(2.0);
      });
  te::Tensor c =
      te::compute({8, 6}, "C", [&](const std::vector<te::Var>& i) {
        return te::access(b, {i[0], i[1]}) + te::make_float(1.0);
      });
  te::Schedule sched({c});
  te::Stage& consumer = sched[c];
  sched[b].compute_at(consumer, consumer.op_axis()[0]);
  consumer.parallel(consumer.op_axis()[0]);
  const te::Stmt program = te::lower(sched);
  EXPECT_TRUE(te::has_parallel_loop(program));
}

TEST(ParallelLowering, ComputeAtInsideParallelLoopRejectedWhenRowsOverlap) {
  // The transposed read makes every consumer row need the whole producer
  // buffer: each parallel iteration recomputes all of B, so writes from
  // different threads overlap — a genuine loop-carried race the prover
  // must reject with its rule id.
  te::Tensor a = te::placeholder({8, 8}, "A");
  te::Tensor b =
      te::compute({8, 8}, "B", [&](const std::vector<te::Var>& i) {
        return te::access(a, {i[0], i[1]}) * te::make_float(2.0);
      });
  te::Tensor c =
      te::compute({8, 8}, "C", [&](const std::vector<te::Var>& i) {
        return te::access(b, {i[0], i[1]}) + te::access(b, {i[1], i[0]});
      });
  te::Schedule sched({c});
  te::Stage& consumer = sched[c];
  sched[b].compute_at(consumer, consumer.op_axis()[0]);
  consumer.parallel(consumer.op_axis()[0]);
  try {
    te::lower(sched);
    FAIL() << "expected the race prover to reject the schedule";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("parallel-loop-race"),
              std::string::npos)
        << e.what();
  }
}

TEST(ParallelLowering, AttachmentOutsideParallelLoopIsAllowed) {
  // Attached strictly outside the parallel loop, each outer iteration
  // recomputes the producer serially before the parallel region starts —
  // no race, and the semantics still match the interpreter.
  te::Tensor a = te::placeholder({8, 6}, "A");
  te::Tensor b =
      te::compute({8, 6}, "B", [&](const std::vector<te::Var>& i) {
        return te::access(a, {i[0], i[1]}) * te::make_float(2.0);
      });
  te::Tensor c =
      te::compute({8, 6}, "C", [&](const std::vector<te::Var>& i) {
        return te::access(b, {i[0], i[1]}) + te::make_float(1.0);
      });
  te::Schedule sched({c});
  te::Stage& consumer = sched[c];
  sched[b].compute_at(consumer, consumer.op_axis()[0]);
  consumer.parallel(consumer.op_axis()[1]);
  const te::Stmt program = te::lower(sched);
  EXPECT_TRUE(te::has_parallel_loop(program));
}

TEST(ParallelLowering, AnnotationSurvivesLoweringAndPasses) {
  kernels::GemmTensors t = kernels::make_gemm(6, 7, 5);
  const te::Stmt serial =
      te::lower(kernels::schedule_gemm(t, 3, 4, /*par_axis=*/0));
  EXPECT_FALSE(te::has_parallel_loop(serial));

  kernels::GemmTensors t2 = kernels::make_gemm(6, 7, 5);
  te::Stmt parallel =
      te::lower(kernels::schedule_gemm(t2, 3, 4, /*par_axis=*/1));
  EXPECT_TRUE(te::has_parallel_loop(parallel));
  // The annotation must survive the standard pass pipeline the backends
  // actually run.
  parallel = te::unroll_loops(te::simplify(parallel));
  EXPECT_TRUE(te::has_parallel_loop(parallel));
}

TEST(ParallelLowering, AnnotateLoopRewritesLoopIrInPlace) {
  // lu/cholesky programs are built directly as loop IR (they never pass
  // through Schedule), so they annotate via te::annotate_loop.
  te::Tensor out = te::placeholder({4}, "out");
  const te::Var i = te::make_var("i");
  te::Stmt stmt = te::make_for(i, 4, te::ForKind::kSerial,
                               te::make_store(out, {i}, te::make_float(1.0)));
  EXPECT_FALSE(te::has_parallel_loop(stmt));
  stmt = te::annotate_loop(stmt, i, te::ForKind::kParallel);
  EXPECT_TRUE(te::has_parallel_loop(stmt));

  const te::Var ghost = te::make_var("ghost");
  EXPECT_THROW(te::annotate_loop(stmt, ghost, te::ForKind::kParallel),
               CheckError);
}

// --- closure tier ------------------------------------------------------------

TEST(ParallelClosure, BitIdenticalToInterpreterAcrossThreadCounts) {
  const std::vector<std::int64_t> dims =
      kernels::polybench_dims("gemm", kernels::Dataset::kMini);
  const auto data = kernels::make_te_kernel_data("gemm", dims);
  const std::vector<std::int64_t> tiles = {4, 5};

  const runtime::NDArray oracle =
      kernels::run_te_backend(data, tiles, ExecBackend::kInterp);
  for (std::int64_t threads : {std::int64_t{2}, nproc(), std::int64_t{0}}) {
    const std::vector<std::int64_t> extended = {4, 5, 1, threads};
    const runtime::NDArray closure =
        kernels::run_te_backend(data, extended, ExecBackend::kClosure);
    expect_bits_equal(oracle, closure,
                      "closure threads=" + std::to_string(threads));
  }
}

TEST(ParallelClosure, ThreeRunsAreByteIdentical) {
  const std::vector<std::int64_t> dims =
      kernels::polybench_dims("3mm", kernels::Dataset::kMini);
  const auto data = kernels::make_te_kernel_data("3mm", dims);
  // All cores (threads = 0), outermost axis parallel.
  const std::vector<std::int64_t> extended = {2, 2, 2, 2, 2, 2, 1, 0};

  const runtime::NDArray first =
      kernels::run_te_backend(data, extended, ExecBackend::kClosure);
  for (int run = 1; run < 3; ++run) {
    const runtime::NDArray again =
        kernels::run_te_backend(data, extended, ExecBackend::kClosure);
    expect_bits_equal(first, again, "run " + std::to_string(run));
  }
}

TEST(ParallelClosure, RunsInlineInsideAPoolWorker) {
  // The measurement engine's --parallel mode executes trials on the same
  // pool the closure tier dispatches on; nested dispatch falls back to a
  // single inline chunk instead of deadlocking, with identical results.
  const std::vector<std::int64_t> dims =
      kernels::polybench_dims("gemm", kernels::Dataset::kMini);
  const auto data = kernels::make_te_kernel_data("gemm", dims);
  const std::vector<std::int64_t> tiles = {4, 5};
  const runtime::NDArray oracle =
      kernels::run_te_backend(data, tiles, ExecBackend::kInterp);

  auto future = default_thread_pool().submit([&data] {
    const std::vector<std::int64_t> extended = {4, 5, 1, 0};
    return kernels::run_te_backend(data, extended, ExecBackend::kClosure);
  });
  const runtime::NDArray nested = future.get();
  expect_bits_equal(oracle, nested, "nested closure");
}

// --- jit tier ----------------------------------------------------------------

TEST(ParallelJit, EmitsOpenMpPragmaOnlyWhenRequested) {
  kernels::GemmTensors t = kernels::make_gemm(6, 7, 5);
  const te::Stmt stmt =
      te::lower(kernels::schedule_gemm(t, 3, 4, /*par_axis=*/1));
  const std::vector<te::Tensor> params = {t.A, t.B, t.C};

  // Default options: serial emission, byte-for-byte free of pragmas (this
  // keeps pre-parallel artifact-cache keys stable).
  const std::string serial = codegen::emit_c_source(stmt, params);
  EXPECT_EQ(serial.find("#pragma omp"), std::string::npos);

  codegen::EmitOptions capped;
  capped.parallel = true;
  capped.num_threads = 4;
  const std::string with_cap =
      codegen::emit_c_source(stmt, params, "tvmbo_kernel", capped);
  EXPECT_NE(with_cap.find("#pragma omp parallel for schedule(static)"),
            std::string::npos);
  EXPECT_NE(with_cap.find("num_threads(4)"), std::string::npos);

  codegen::EmitOptions uncapped;
  uncapped.parallel = true;
  const std::string all_cores =
      codegen::emit_c_source(stmt, params, "tvmbo_kernel", uncapped);
  EXPECT_NE(all_cores.find("#pragma omp parallel for schedule(static)"),
            std::string::npos);
  EXPECT_EQ(all_cores.find("num_threads("), std::string::npos);
}

TEST(ParallelJit, PragmaOnlyLandsOnParallelLoops) {
  // A serial schedule emitted with parallel options must stay pragma-free
  // — the option gates emission, the annotation selects the loop.
  kernels::GemmTensors t = kernels::make_gemm(6, 7, 5);
  const te::Stmt stmt =
      te::lower(kernels::schedule_gemm(t, 3, 4, /*par_axis=*/0));
  codegen::EmitOptions options;
  options.parallel = true;
  const std::string source =
      codegen::emit_c_source(stmt, {t.A, t.B, t.C}, "tvmbo_kernel", options);
  EXPECT_EQ(source.find("#pragma omp"), std::string::npos);
}

TEST(ParallelJit, BitIdenticalToInterpreterAcrossThreadCounts) {
  const codegen::JitOptions base = parallel_test_options("bits");
  if (!codegen::JitProgram::toolchain_available(base)) {
    GTEST_SKIP() << "no C toolchain";
  }
  const std::vector<std::int64_t> dims =
      kernels::polybench_dims("gemm", kernels::Dataset::kMini);
  const auto data = kernels::make_te_kernel_data("gemm", dims);
  const std::vector<std::int64_t> tiles = {4, 5};

  const runtime::NDArray oracle =
      kernels::run_te_backend(data, tiles, ExecBackend::kInterp);
  for (std::int64_t threads : {std::int64_t{2}, std::int64_t{0}}) {
    const std::vector<std::int64_t> extended = {4, 5, 1, threads};
    const runtime::NDArray jitted =
        kernels::run_te_backend(data, extended, ExecBackend::kJit, base);
    expect_bits_equal(oracle, jitted,
                      "jit threads=" + std::to_string(threads));
  }
}

TEST(ParallelJit, ThreeRunsAreByteIdentical) {
  const codegen::JitOptions base = parallel_test_options("determinism");
  if (!codegen::JitProgram::toolchain_available(base)) {
    GTEST_SKIP() << "no C toolchain";
  }
  const std::vector<std::int64_t> dims =
      kernels::polybench_dims("3mm", kernels::Dataset::kMini);
  const auto data = kernels::make_te_kernel_data("3mm", dims);
  const std::vector<std::int64_t> extended = {2, 2, 2, 2, 2, 2, 1, 0};

  const runtime::NDArray first =
      kernels::run_te_backend(data, extended, ExecBackend::kJit, base);
  for (int run = 1; run < 3; ++run) {
    const runtime::NDArray again =
        kernels::run_te_backend(data, extended, ExecBackend::kJit, base);
    expect_bits_equal(first, again, "run " + std::to_string(run));
  }
}

TEST(ParallelJit, ParallelBeatsSerialOn3mmLarge) {
  // The PR's acceptance bar: on a >= 4-core machine with OpenMP, the
  // parallel jit must run the paper's 3mm large instance at least 2x
  // faster than the serial jit on the same tile configuration — without
  // changing a single output bit (serial jit is itself differentially
  // verified against the interpreter at mini size).
  const codegen::JitOptions options = parallel_test_options("speedup");
  if (nproc() < 4) {
    GTEST_SKIP() << "needs >= 4 cores, have " << nproc();
  }
  if (!codegen::JitProgram::toolchain_available(options)) {
    GTEST_SKIP() << "no C toolchain";
  }
  if (!codegen::JitProgram::openmp_available(options)) {
    GTEST_SKIP() << "toolchain has no OpenMP support";
  }

  const std::vector<std::int64_t> dims =
      kernels::polybench_dims("3mm", kernels::Dataset::kLarge);
  const auto data = kernels::make_te_kernel_data("3mm", dims);
  const std::vector<std::int64_t> tiles = {40, 40, 40, 40, 40, 40};
  std::vector<std::int64_t> serial_cfg = tiles;
  serial_cfg.insert(serial_cfg.end(), {0, 1});
  std::vector<std::int64_t> parallel_cfg = tiles;
  parallel_cfg.insert(parallel_cfg.end(), {1, 0});  // yo across all cores

  const runtime::Workload workload =
      kernels::make_workload("3mm", kernels::Dataset::kLarge);
  runtime::MeasureInput serial = kernels::make_te_measure_input(
      data, workload, serial_cfg, ExecBackend::kJit, options);
  runtime::MeasureInput parallel = kernels::make_te_measure_input(
      data, workload, parallel_cfg, ExecBackend::kJit, options);
  serial.prepare();
  parallel.prepare();
  serial.run();    // warm up (page-in the fresh mappings)
  parallel.run();  // warm up (and spin up the OpenMP team)

  constexpr int kRuns = 2;
  Stopwatch serial_timer;
  for (int i = 0; i < kRuns; ++i) serial.run();
  const double serial_s = serial_timer.elapsed_seconds() / kRuns;
  Stopwatch parallel_timer;
  for (int i = 0; i < kRuns; ++i) parallel.run();
  const double parallel_s = parallel_timer.elapsed_seconds() / kRuns;

  EXPECT_GE(serial_s / parallel_s, 2.0)
      << "serial " << serial_s << " s vs parallel " << parallel_s << " s on "
      << nproc() << " cores";

  // Same bits, just faster.
  const runtime::NDArray serial_out =
      kernels::run_te_backend(data, serial_cfg, ExecBackend::kJit, options);
  const runtime::NDArray parallel_out =
      kernels::run_te_backend(data, parallel_cfg, ExecBackend::kJit, options);
  expect_bits_equal(serial_out, parallel_out, "3mm large");
}

// --- tuning-session determinism ----------------------------------------------

TEST(ParallelDeterminism, FixedSeedSessionsReplayIdentically) {
  // A thread-count knob must not perturb the search itself: two sessions
  // with the same seed over a space that includes parallel configurations
  // propose the same configuration sequence and complete every
  // evaluation, even though the measured kernels dispatch across threads.
  if (nproc() < 2) {
    GTEST_SKIP() << "single-core machine; parallel configs degenerate";
  }
  const std::vector<std::int64_t> dims =
      kernels::polybench_dims("gemm", kernels::Dataset::kMini);
  const runtime::Workload workload =
      kernels::make_workload("gemm", kernels::Dataset::kMini);
  const auto data = kernels::make_te_kernel_data("gemm", dims);

  autotvm::Task task;
  task.name = "gemm_parallel_determinism";
  task.workload = workload;
  task.config.define_knob("threads", {1, nproc()});
  task.instantiate = [data,
                      workload](const std::vector<std::int64_t>& knobs) {
    // Fixed tiles, parallel axis yo; only the thread budget is tuned.
    const std::vector<std::int64_t> extended = {4, 5, 1, knobs[0]};
    return kernels::make_te_measure_input(data, workload, extended,
                                          ExecBackend::kClosure);
  };

  runtime::CpuDevice device;
  framework::SessionOptions options;
  options.max_evaluations = 4;
  options.seed = 99;
  options.charge_strategy_overhead = false;

  auto tile_sequence = [&]() {
    framework::AutotuningSession session(&task, &device, options);
    const framework::SessionResult result =
        session.run(framework::StrategyKind::kAutotvmRandom);
    EXPECT_EQ(result.evaluations, options.max_evaluations);
    EXPECT_TRUE(result.best.has_value());
    std::vector<std::vector<std::int64_t>> sequence;
    for (const auto& record : result.db.records()) {
      EXPECT_TRUE(record.valid);
      sequence.push_back(record.tiles);
    }
    return sequence;
  };

  const auto first = tile_sequence();
  const auto second = tile_sequence();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace tvmbo
