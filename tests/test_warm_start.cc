// Transfer-learning tests: ConfigurationSpace::from_values round trips and
// BayesianOptimizer::warm_start seeded from a saved performance database.
#include <gtest/gtest.h>

#include "configspace/divisors.h"
#include "framework/session.h"
#include "kernels/polybench.h"
#include "runtime/perf_db.h"
#include "runtime/swing_sim.h"
#include "ytopt/bayes_opt.h"

namespace tvmbo {
namespace {

TEST(FromValues, RoundTripsThroughValues) {
  const auto space = kernels::build_space("lu", {2000});
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const cs::Configuration config = space.sample(rng);
    const cs::Configuration restored =
        space.from_values(space.values(config));
    EXPECT_TRUE(restored == config);
  }
}

TEST(FromValues, RejectsOutOfDomainValue) {
  const auto space = kernels::build_space("lu", {2000});
  EXPECT_THROW(space.from_values({3.0, 50.0}), CheckError);  // 3 ∤ 2000
  EXPECT_THROW(space.from_values({400.0}), CheckError);      // arity
}

TEST(FromValues, HandlesMixedParameterKinds) {
  cs::ConfigurationSpace space;
  space.add(std::make_shared<cs::CategoricalHyperparameter>(
      "mode", std::vector<std::string>{"a", "b", "c"}));
  space.add(std::make_shared<cs::UniformIntegerHyperparameter>("n", 2, 6));
  space.add(std::make_shared<cs::UniformFloatHyperparameter>("lr", 0.0,
                                                             1.0));
  const cs::Configuration config = space.from_values({2.0, 5.0, 0.25});
  EXPECT_EQ(config.index(0), 2);
  EXPECT_EQ(config.index(1), 3);  // 5 - lower(2)
  EXPECT_DOUBLE_EQ(config.real(2), 0.25);
}

TEST(WarmStart, PriorPointsAreNeverReproposed) {
  const auto space = kernels::build_space("lu", {2000});
  ytopt::BayesianOptimizer bo(&space, 7);
  std::vector<tuners::Trial> prior;
  for (std::uint64_t flat = 0; flat < 40; ++flat) {
    prior.push_back({space.from_flat_index(flat), 5.0, true});
  }
  bo.warm_start(prior);
  for (int i = 0; i < 60; ++i) {
    const auto config = bo.ask();
    EXPECT_GE(space.to_flat_index(config), 40u) << "re-proposed a prior";
    bo.tell(config, 4.0);
  }
}

TEST(WarmStart, SurrogateTrainsFromPriorAlone) {
  const auto space = kernels::build_space("lu", {2000});
  ytopt::BayesianOptimizer bo(&space, 8);
  Rng rng(9);
  std::vector<tuners::Trial> prior;
  for (int i = 0; i < 30; ++i) {
    const auto config = space.sample(rng);
    const double runtime =
        1.0 + 0.05 * static_cast<double>(config.index(0));
    prior.push_back({config, runtime, true});
  }
  bo.warm_start(prior);
  // The very first ask after warm start skips the random init design and
  // goes straight to the surrogate.
  bo.ask();
  EXPECT_TRUE(bo.surrogate_ready());
}

TEST(WarmStart, SpeedsConvergenceOnTheSwingSurface) {
  const auto workload = kernels::make_workload(
      "lu", kernels::Dataset::kLarge);
  const auto space = kernels::build_space("lu", workload.dims);
  runtime::SwingSimDevice device;

  auto measure = [&](const cs::Configuration& config) {
    return device.surface_runtime(workload, space.values_int(config));
  };

  // A previous tuning run's database (40 random points).
  Rng rng(11);
  std::vector<tuners::Trial> prior;
  for (int i = 0; i < 40; ++i) {
    const auto config = space.sample(rng);
    prior.push_back({config, measure(config), true});
  }

  double warm_sum = 0.0, cold_sum = 0.0;
  const int budget = 12;  // a short new run; warm start should help here
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    ytopt::BayesianOptimizer warm(&space, seed);
    warm.warm_start(prior);
    for (int i = 0; i < budget; ++i) {
      const auto config = warm.ask();
      warm.tell(config, measure(config));
    }
    // Only count what the *new* run found (exclude prior trials).
    double warm_best = 1e300;
    for (std::size_t i = prior.size(); i < warm.history().size(); ++i) {
      warm_best = std::min(warm_best, warm.history()[i].runtime_s);
    }
    warm_sum += warm_best;

    ytopt::BayesianOptimizer cold(&space, seed);
    for (int i = 0; i < budget; ++i) {
      const auto config = cold.ask();
      cold.tell(config, measure(config));
    }
    cold_sum += cold.best()->runtime_s;
  }
  EXPECT_LE(warm_sum, cold_sum * 1.02);
}

TEST(WarmStart, FromPerfDatabaseRecords) {
  // End-to-end: save a database, reload it, reconstruct configurations
  // with from_values, and warm-start a fresh optimizer.
  const auto space = kernels::build_space("lu", {2000});
  runtime::PerfDatabase db;
  Rng rng(13);
  for (int i = 0; i < 10; ++i) {
    const auto config = space.sample(rng);
    runtime::TrialRecord record;
    record.eval_index = i;
    record.strategy = "ytopt";
    record.workload_id = "lu/large[2000]";
    record.tiles = space.values_int(config);
    record.runtime_s = 2.0 + 0.1 * i;
    db.add(record);
  }
  const auto restored =
      runtime::PerfDatabase::from_json_lines(db.to_json_lines());

  ytopt::BayesianOptimizer bo(&space, 17);
  std::vector<tuners::Trial> prior;
  for (const auto& record : restored.records()) {
    std::vector<double> values(record.tiles.begin(), record.tiles.end());
    prior.push_back(
        {space.from_values(values), record.runtime_s, record.valid});
  }
  bo.warm_start(prior);
  EXPECT_EQ(bo.history().size(), 10u);
  ASSERT_NE(bo.best(), nullptr);
  EXPECT_DOUBLE_EQ(bo.best()->runtime_s, 2.0);
}

TEST(WarmStart, SessionAccountsForSkippedRecords) {
  // A realistic shared database holds records the current task cannot
  // use: other workloads, and tiles saved under a different space. The
  // session must seed what fits and report exactly what it skipped.
  autotvm::Task task = kernels::make_task("lu", kernels::Dataset::kLarge);
  const auto space = kernels::build_space("lu", {2000});
  const std::string workload_id = task.workload.id();

  runtime::PerfDatabase db;
  Rng rng(21);
  auto add_record = [&](const std::string& id,
                        std::vector<std::int64_t> tiles) {
    runtime::TrialRecord record;
    record.eval_index = static_cast<std::int64_t>(db.size());
    record.strategy = "ytopt";
    record.workload_id = id;
    record.tiles = std::move(tiles);
    record.runtime_s = 2.0 + 0.01 * static_cast<double>(db.size());
    record.valid = true;
    db.add(record);
  };
  for (int i = 0; i < 5; ++i) {
    add_record(workload_id, space.values_int(space.sample(rng)));
  }
  add_record("gemm/large[1000x1100x1200]", {8, 8});  // other workload
  add_record("gemm/large[1000x1100x1200]", {4, 4});  // other workload
  add_record(workload_id, {3, 50});                  // 3 does not divide 2000
  add_record(workload_id, {400});                    // wrong arity

  runtime::SwingSimDevice device(2023);
  framework::SessionOptions options;
  options.max_evaluations = 6;
  options.seed = 3;
  options.warm_start = &db;
  const framework::SessionResult result =
      framework::AutotuningSession(&task, &device, options)
          .run(framework::StrategyKind::kYtopt);

  EXPECT_EQ(result.warm_start.seeded, 5u);
  EXPECT_EQ(result.warm_start.skipped_workload, 2u);
  EXPECT_EQ(result.warm_start.skipped_space, 2u);
  EXPECT_EQ(result.warm_start.total(), db.size());
  // Prior trials seed the optimizer without consuming the measurement
  // budget: the session still runs its own evaluations.
  EXPECT_EQ(result.db.size(), 6u);
}

}  // namespace
}  // namespace tvmbo
