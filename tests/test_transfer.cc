// Transfer-learning subsystem (src/transfer/): IR-derived features, the
// cross-kernel cost model, the dataset-replay model store, instant-config
// lookup, and the PR's acceptance bar — leave-one-kernel-out sessions
// warm-started by the model must reach the cold-start best in strictly
// fewer trials on the deterministic swing surface.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "framework/session.h"
#include "kernels/polybench.h"
#include "kernels/te_programs.h"
#include "runtime/perf_db.h"
#include "runtime/swing_sim.h"
#include "transfer/cost_model.h"
#include "transfer/features.h"
#include "transfer/lookup.h"
#include "transfer/model_store.h"

namespace tvmbo::transfer {
namespace {

/// Fills `db` with swing-surface measurements of random configurations.
void sample_into_db(runtime::PerfDatabase& db,
                    const runtime::SwingSimDevice& sim,
                    const std::string& kernel, kernels::Dataset dataset,
                    std::size_t count, std::uint64_t seed) {
  const runtime::Workload workload = kernels::make_workload(kernel, dataset);
  const cs::ConfigurationSpace space =
      kernels::build_space(kernel, workload.dims);
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const std::vector<std::int64_t> tiles =
        space.values_int(space.sample(rng));
    runtime::TrialRecord record;
    record.eval_index = static_cast<int>(i);
    record.strategy = "sample";
    record.workload_id = workload.id();
    record.tiles = tiles;
    record.runtime_s = sim.surface_runtime(workload, tiles);
    record.valid = true;
    record.backend = "sim";
    db.add(record);
  }
}

TEST(TransferFeatures, FixedWidthWithStableNames) {
  EXPECT_GT(num_features(), 0u);
  EXPECT_EQ(feature_names().size(), num_features());
  const std::vector<double> features =
      featurize_config("lu", {128}, std::vector<std::int64_t>{8, 8});
  EXPECT_EQ(features.size(), num_features());
}

TEST(TransferFeatures, DeterministicAcrossFreshLowerings) {
  // Every lowering mints fresh loop Vars (new node identities), so
  // byte-identical vectors across independent lowerings prove the
  // extractor never reads names, ids, or addresses — the property that
  // makes features comparable across processes and across the
  // interp/closure/jit tiers (which share this one lowering).
  const std::vector<std::int64_t> tiles = {16, 8, 1, 2, 0, 2, 0};
  const std::vector<double> a = featurize_config("lu", {128}, tiles);
  const std::vector<double> b = featurize_config("lu", {128}, tiles);
  const kernels::TeLoweredProgram lowered =
      kernels::lower_te_program("lu", {128}, tiles);
  const std::vector<double> c =
      extract_features(lowered.stmt, lowered.parallel_threads);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << feature_names()[i];
    EXPECT_EQ(a[i], c[i]) << feature_names()[i];
  }
  // And via the full executable-instance path (the third independent
  // lowering, fresh var identities again).
  kernels::TeProgramInstance instance(
      kernels::make_te_kernel_data("lu", {128}), tiles);
  const std::vector<double> d =
      extract_features(instance.stmt(), instance.parallel_threads());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], d[i]) << feature_names()[i];
  }
}

TEST(TransferFeatures, InvariantUnderSingletonKnobCollapse) {
  // The same schedule spelled as base tiles, base + [par_axis=0,
  // threads=1], and the fully widened form with every extra knob at its
  // neutral value lowers to the same program — the features must agree,
  // or a model trained on records from one space shape would mis-score
  // the identical config from another.
  const std::vector<std::int64_t> base = {16, 8};
  const std::vector<std::int64_t> with_parallel = {16, 8, 0, 1};
  const std::vector<std::int64_t> widened = {16, 8, 0, 1, 0, 0, 0};
  const std::vector<double> a = featurize_config("lu", {128}, base);
  const std::vector<double> b =
      featurize_config("lu", {128}, with_parallel);
  const std::vector<double> c = featurize_config("lu", {128}, widened);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << feature_names()[i];
    EXPECT_EQ(a[i], c[i]) << feature_names()[i];
  }
}

TEST(TransferFeatures, ScheduleKnobsMoveTheVector) {
  const std::vector<double> plain =
      featurize_config("gemm", {64, 64, 64},
                       std::vector<std::int64_t>{8, 8});
  const std::vector<double> parallel =
      featurize_config("gemm", {64, 64, 64},
                       std::vector<std::int64_t>{8, 8, 1, 4});
  const std::vector<double> vectorized = featurize_config(
      "gemm", {64, 64, 64}, std::vector<std::int64_t>{8, 8, 0, 1, 1, 0, 0});
  EXPECT_NE(plain, parallel);
  EXPECT_NE(plain, vectorized);
  EXPECT_NE(parallel, vectorized);
}

TEST(TransferCostModel, ParsesWorkloadIds) {
  std::string kernel, size;
  std::vector<std::int64_t> dims;
  ASSERT_TRUE(parse_workload_id("3mm/mini[16x18x20x22x24]", &kernel, &size,
                                &dims));
  EXPECT_EQ(kernel, "3mm");
  EXPECT_EQ(size, "mini");
  EXPECT_EQ(dims, (std::vector<std::int64_t>{16, 18, 20, 22, 24}));
  EXPECT_TRUE(parse_workload_id("lu/large[2000]", &kernel, &size, &dims));
  EXPECT_EQ(dims, (std::vector<std::int64_t>{2000}));
  EXPECT_FALSE(parse_workload_id("garbage", &kernel, &size, &dims));
  EXPECT_FALSE(parse_workload_id("lu/large[abc]", &kernel, &size, &dims));
  EXPECT_FALSE(parse_workload_id("lu/large", &kernel, &size, &dims));
}

TEST(TransferCostModel, FeaturizeRecordRejectsUnusableRecords) {
  runtime::TrialRecord good;
  good.workload_id = "lu/mini[40]";
  good.tiles = {8, 8};
  good.runtime_s = 1.0;
  good.valid = true;
  ASSERT_TRUE(featurize_record(good).has_value());

  runtime::TrialRecord invalid = good;
  invalid.valid = false;
  EXPECT_FALSE(featurize_record(invalid).has_value());

  runtime::TrialRecord no_runtime = good;
  no_runtime.runtime_s = 0.0;
  EXPECT_FALSE(featurize_record(no_runtime).has_value());

  runtime::TrialRecord bad_id = good;
  bad_id.workload_id = "fault.crash";
  EXPECT_FALSE(featurize_record(bad_id).has_value());

  runtime::TrialRecord bad_tiles = good;
  bad_tiles.tiles = {8, 8, 8, 8, 8, 8, 8, 8};
  EXPECT_FALSE(featurize_record(bad_tiles).has_value());
}

TEST(TransferCostModel, LearnsTheSwingSurfaceAcrossKernels) {
  const runtime::SwingSimDevice sim(2023);
  runtime::PerfDatabase db;
  sample_into_db(db, sim, "lu", kernels::Dataset::kLarge, 60, 1);
  sample_into_db(db, sim, "cholesky", kernels::Dataset::kLarge, 60, 2);
  CostModel model;
  ASSERT_GE(model.add_database(db), 100u);
  model.fit();
  ASSERT_TRUE(model.fitted());

  // Rank correlation on fresh (unseen) lu configurations: predicted and
  // measured orderings must agree far better than chance.
  const runtime::Workload workload =
      kernels::make_workload("lu", kernels::Dataset::kLarge);
  const cs::ConfigurationSpace space =
      kernels::build_space("lu", workload.dims);
  Rng rng(77);
  std::vector<std::pair<double, double>> points;  // (predicted, measured)
  for (int i = 0; i < 40; ++i) {
    const std::vector<std::int64_t> tiles =
        space.values_int(space.sample(rng));
    const std::vector<double> features =
        featurize_config("lu", workload.dims, tiles);
    points.emplace_back(model.predict_runtime(features),
                        sim.surface_runtime(workload, tiles));
  }
  std::size_t concordant = 0, pairs = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      if (points[i].second == points[j].second) continue;
      ++pairs;
      if ((points[i].first < points[j].first) ==
          (points[i].second < points[j].second)) {
        ++concordant;
      }
    }
  }
  EXPECT_GT(static_cast<double>(concordant) / static_cast<double>(pairs),
            0.6);
}

TEST(TransferCostModel, ObserveRefitsOnTheConfiguredCadence) {
  CostModelOptions options;
  options.refit_interval = 4;
  CostModel model(options);
  const runtime::SwingSimDevice sim(2023);
  const runtime::Workload workload =
      kernels::make_workload("lu", kernels::Dataset::kMini);
  const cs::ConfigurationSpace space =
      kernels::build_space("lu", workload.dims);
  Rng rng(5);
  for (int i = 0; i < 12; ++i) {
    const std::vector<std::int64_t> tiles =
        space.values_int(space.sample(rng));
    runtime::TrialRecord record;
    record.workload_id = workload.id();
    record.tiles = tiles;
    record.runtime_s = sim.surface_runtime(workload, tiles);
    record.valid = true;
    EXPECT_TRUE(model.observe(record));
  }
  EXPECT_EQ(model.size(), 12u);
  EXPECT_TRUE(model.fitted());

  runtime::TrialRecord junk;
  junk.workload_id = "not-a-workload";
  junk.runtime_s = 1.0;
  junk.valid = true;
  EXPECT_FALSE(model.observe(junk));
  EXPECT_EQ(model.size(), 12u);
}

TEST(TransferModelStore, RoundTripPredictsIdentically) {
  const runtime::SwingSimDevice sim(2023);
  runtime::PerfDatabase db;
  sample_into_db(db, sim, "gemm", kernels::Dataset::kMini, 40, 3);
  sample_into_db(db, sim, "syrk", kernels::Dataset::kMini, 40, 4);
  CostModel model;
  model.add_database(db);
  model.fit();

  const std::string path =
      (std::filesystem::temp_directory_path() / "tvmbo_model_test.json")
          .string();
  save_model(model, path);
  const CostModel loaded = load_model(path);
  std::remove(path.c_str());

  ASSERT_TRUE(loaded.fitted());
  ASSERT_EQ(loaded.size(), model.size());
  // Dataset replay: the loaded model refits from the same samples in the
  // same order with the same seed, so predictions are bit-identical.
  const std::vector<std::int64_t> tiles = {8, 8};
  const std::vector<double> features = featurize_config(
      "gemm", kernels::polybench_dims("gemm", kernels::Dataset::kMini),
      tiles);
  EXPECT_EQ(model.predict_log_runtime(features),
            loaded.predict_log_runtime(features));
}

TEST(TransferModelStore, RejectsUnknownFileVersion) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tvmbo_model_bad.json")
          .string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"v\": 99, \"samples\": []}", f);
    std::fclose(f);
  }
  EXPECT_THROW(load_model(path), CheckError);
  std::remove(path.c_str());
}

TEST(TransferLoko, EvaluatesEveryKernelHeldOut) {
  const runtime::SwingSimDevice sim(2023);
  runtime::PerfDatabase db;
  // Large datasets: the mini spaces are small enough that surface noise
  // dominates the tile response, which makes held-out ranking a coin flip.
  sample_into_db(db, sim, "lu", kernels::Dataset::kLarge, 30, 6);
  sample_into_db(db, sim, "cholesky", kernels::Dataset::kLarge, 30, 7);
  sample_into_db(db, sim, "gemm", kernels::Dataset::kLarge, 30, 8);
  CostModel model;
  model.add_database(db);
  const std::vector<LokoResult> results =
      leave_one_kernel_out(model.samples(), model.options());
  ASSERT_EQ(results.size(), 3u);
  int positive = 0;
  for (const LokoResult& result : results) {
    EXPECT_GE(result.train_size, 50u);
    EXPECT_GE(result.test_size, 20u);
    EXPECT_GE(result.top1_regret, 0.0) << result.kernel;
    if (result.rank_correlation > 0.2) ++positive;
  }
  // The swing surface is learnable across kernels, but not every pair
  // transfers equally well; require a clearly-positive held-out ranking
  // for most of the kernels rather than all three.
  EXPECT_GE(positive, 2);
}

TEST(TransferRanking, RankedSeedsAreDistinctAndInSpace) {
  const runtime::SwingSimDevice sim(2023);
  runtime::PerfDatabase db;
  sample_into_db(db, sim, "lu", kernels::Dataset::kMini, 40, 9);
  sample_into_db(db, sim, "gemm", kernels::Dataset::kMini, 40, 10);
  CostModel model;
  model.add_database(db);
  model.fit();

  // Rank a kernel the model never saw (transfer across kernels).
  const std::vector<std::int64_t> dims =
      kernels::polybench_dims("cholesky", kernels::Dataset::kMini);
  const cs::ConfigurationSpace space =
      kernels::build_space("cholesky", dims);
  const std::vector<RankedConfig> ranked =
      rank_configs(model, space, "cholesky", dims, 5, 64, 2023);
  ASSERT_EQ(ranked.size(), 5u);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].predicted_runtime_s,
              ranked[i].predicted_runtime_s);
    EXPECT_NE(ranked[i - 1].tiles, ranked[i].tiles);
  }
  // Deterministic for a fixed seed.
  const std::vector<RankedConfig> again =
      rank_configs(model, space, "cholesky", dims, 5, 64, 2023);
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_EQ(ranked[i].tiles, again[i].tiles);
  }
}

/// First evaluation index whose runtime is <= threshold (db.size() when
/// never reached).
std::size_t first_reach(const runtime::PerfDatabase& db, double threshold) {
  for (std::size_t i = 0; i < db.size(); ++i) {
    if (db.record(i).valid && db.record(i).runtime_s <= threshold) return i;
  }
  return db.size();
}

TEST(TransferWarmStart, ReachesColdBestInFewerTrialsOnHeldOutKernels) {
  // The PR's acceptance bar: leave-one-kernel-out transfer. A model
  // trained on the *other* kernels' swing-surface measurements seeds a
  // fresh session on the held-out kernel; at a fixed seed the seeded
  // session must match the cold session's final best in strictly fewer
  // evaluations — for two different held-out kernels.
  const runtime::SwingSimDevice sim(2023);
  const std::vector<std::string> all = {"lu", "cholesky", "gemm", "2mm",
                                        "syrk"};
  for (const std::string& held_out : {std::string("lu"),
                                      std::string("cholesky")}) {
    runtime::PerfDatabase db;
    std::uint64_t salt = 100;
    for (const std::string& kernel : all) {
      if (kernel == held_out) continue;
      sample_into_db(db, sim, kernel, kernels::Dataset::kLarge, 120, ++salt);
    }
    CostModel model;
    model.add_database(db);
    model.fit();

    const autotvm::Task task =
        kernels::make_task(held_out, kernels::Dataset::kLarge);
    // Fixed seed, and a fresh identically-seeded device per session: both
    // runs measure identical runtimes for identical configs, so the only
    // difference between them is the transfer seeding. The swing surface,
    // the space, and both session paths are fully deterministic, making
    // this a reproducible regression bar rather than a flaky statistical
    // one.
    framework::SessionOptions options;
    options.max_evaluations = 40;
    options.seed = 10;
    runtime::SwingSimDevice cold_device(2023);
    const framework::SessionResult cold =
        framework::AutotuningSession(&task, &cold_device, options)
            .run(framework::StrategyKind::kYtopt);
    ASSERT_TRUE(cold.best.has_value());

    options.transfer_model = &model;
    options.transfer_topk = 4;
    options.transfer_pool = 512;
    runtime::SwingSimDevice warm_device(2023);
    const framework::SessionResult warm =
        framework::AutotuningSession(&task, &warm_device, options)
            .run(framework::StrategyKind::kYtopt);
    ASSERT_TRUE(warm.best.has_value());
    EXPECT_GT(warm.transfer_seeds, 0u) << held_out;

    const double cold_best = cold.best->runtime_s;
    const std::size_t cold_at = first_reach(cold.db, cold_best);
    const std::size_t warm_at = first_reach(warm.db, cold_best);
    EXPECT_LT(warm_at, cold_at)
        << held_out << ": the transfer-seeded session should reach the cold "
        << "session's final best (" << cold_best
        << ") in strictly fewer evaluations";
  }
}

TEST(TransferLookup, AnswersFromCacheThenModelThenNone) {
  const runtime::SwingSimDevice sim(2023);
  runtime::PerfDatabase db;
  sample_into_db(db, sim, "lu", kernels::Dataset::kMini, 30, 11);
  sample_into_db(db, sim, "gemm", kernels::Dataset::kMini, 30, 12);

  ConfigLookup lookup;
  EXPECT_EQ(lookup.load_database(db), 60u);

  // Exact cache hit: the single best measured config for the workload.
  const LookupAnswer cached = lookup.lookup("lu", "mini", 1, 4);
  EXPECT_EQ(cached.source, "cache");
  EXPECT_EQ(cached.cache_records, 30u);
  ASSERT_EQ(cached.configs.size(), 1u);
  double best = std::numeric_limits<double>::infinity();
  for (const runtime::TrialRecord& record : db.records()) {
    if (record.workload_id.rfind("lu/", 0) == 0) {
      best = std::min(best, record.runtime_s);
    }
  }
  EXPECT_DOUBLE_EQ(cached.configs[0].runtime_s, best);

  // No record, no model: a valid query with nothing to offer.
  EXPECT_EQ(lookup.lookup("cholesky", "mini", 1, 1).source, "none");

  // With a model attached the same query falls back to predicted top-k.
  CostModel model;
  model.add_database(db);
  model.fit();
  lookup.set_model(std::make_shared<CostModel>(std::move(model)));
  const LookupAnswer predicted = lookup.lookup("cholesky", "mini", 1, 3);
  EXPECT_EQ(predicted.source, "model");
  EXPECT_EQ(predicted.configs.size(), 3u);

  // Invalid queries come back as errors, not throws.
  EXPECT_FALSE(lookup.lookup("nope", "mini", 1, 1).error.empty());
  EXPECT_FALSE(lookup.lookup("lu", "nope", 1, 1).error.empty());
}

TEST(TransferLookup, ObserveKeepsTheBestPerThreadBudget) {
  ConfigLookup lookup;
  runtime::TrialRecord record;
  record.workload_id = "lu/mini[40]";
  record.tiles = {8, 8};
  record.runtime_s = 2.0;
  record.valid = true;
  record.nthreads = 1;
  lookup.observe(record);

  runtime::TrialRecord better = record;
  better.tiles = {4, 4};
  better.runtime_s = 1.0;
  lookup.observe(better);

  runtime::TrialRecord threaded = record;
  threaded.tiles = {2, 2};
  threaded.runtime_s = 0.5;
  threaded.nthreads = 4;
  lookup.observe(threaded);

  runtime::TrialRecord invalid = record;
  invalid.tiles = {1, 1};
  invalid.runtime_s = 0.1;
  invalid.valid = false;
  lookup.observe(invalid);  // must not enter the cache

  const LookupAnswer serial = lookup.lookup("lu", "mini", 1, 1);
  ASSERT_EQ(serial.configs.size(), 1u);
  EXPECT_EQ(serial.configs[0].tiles, (std::vector<std::int64_t>{4, 4}));
  EXPECT_DOUBLE_EQ(serial.configs[0].runtime_s, 1.0);
  EXPECT_EQ(serial.cache_records, 2u);

  // The 4-thread budget is a distinct cache key.
  const LookupAnswer parallel = lookup.lookup("lu", "mini", 4, 1);
  ASSERT_EQ(parallel.configs.size(), 1u);
  EXPECT_EQ(parallel.configs[0].tiles, (std::vector<std::int64_t>{2, 2}));
}

}  // namespace
}  // namespace tvmbo::transfer
