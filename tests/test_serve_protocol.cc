// Serve wire protocol + distd framing hardening: job-spec validation,
// max-frame-size enforcement before allocation, typed rejection of
// oversized/malformed/garbage frames, and fuzz-style hostile-client
// salvos against a live server.
#include "serve/protocol.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "distd/protocol.h"
#include "distd/worker_pool.h"
#include "serve/client.h"
#include "serve/scheduler.h"
#include "serve/server.h"

namespace tvmbo::serve {
namespace {

using distd::FrameStatus;

// --- JobSpec --------------------------------------------------------------

TEST(ServeProtocol, JobSpecRoundTrips) {
  JobSpec spec;
  spec.tenant = "alice";
  spec.kernel = "3mm";
  spec.size = "small";
  spec.strategy = "ytopt";
  spec.budget = 42;
  spec.nthreads = 4;
  spec.seed = 99;
  spec.priority = 0;
  spec.backend = "jit";
  spec.repeat = 2;
  spec.timeout_s = 1.5;

  const JobSpec back = JobSpec::from_json(spec.to_json());
  EXPECT_EQ(back.tenant, spec.tenant);
  EXPECT_EQ(back.kernel, spec.kernel);
  EXPECT_EQ(back.size, spec.size);
  EXPECT_EQ(back.strategy, spec.strategy);
  EXPECT_EQ(back.budget, spec.budget);
  EXPECT_EQ(back.nthreads, spec.nthreads);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.priority, spec.priority);
  EXPECT_EQ(back.backend, spec.backend);
  EXPECT_EQ(back.repeat, spec.repeat);
  EXPECT_DOUBLE_EQ(back.timeout_s, spec.timeout_s);
}

TEST(ServeProtocol, JobSpecRejectsBadFields) {
  const auto rejects = [](const char* mutation, Json frame) {
    EXPECT_THROW(JobSpec::from_json(frame), std::exception) << mutation;
  };
  JobSpec good;
  good.kernel = "gemm";

  Json no_kernel = good.to_json();
  no_kernel.set("kernel", "");
  rejects("empty kernel", no_kernel);

  Json zero_budget = good.to_json();
  zero_budget.set("budget", 0);
  rejects("zero budget", zero_budget);

  Json negative_budget = good.to_json();
  negative_budget.set("budget", -5);
  rejects("negative budget", negative_budget);

  Json empty_tenant = good.to_json();
  empty_tenant.set("tenant", "");
  rejects("empty tenant", empty_tenant);

  Json bad_priority = good.to_json();
  bad_priority.set("priority", -1);
  rejects("negative priority", bad_priority);

  Json bad_repeat = good.to_json();
  bad_repeat.set("repeat", 0);
  rejects("zero repeat", bad_repeat);

  Json bad_timeout = good.to_json();
  bad_timeout.set("timeout_s", -1.0);
  rejects("negative timeout", bad_timeout);
}

TEST(ServeProtocol, LookupSpecRoundTrips) {
  LookupSpec spec;
  spec.kernel = "cholesky";
  spec.size = "small";
  spec.nthreads = 8;
  spec.topk = 3;

  const Json frame = spec.to_json();
  EXPECT_EQ(frame.at("type").as_string(), "config_lookup");
  const LookupSpec back = LookupSpec::from_json(frame);
  EXPECT_EQ(back.kernel, spec.kernel);
  EXPECT_EQ(back.size, spec.size);
  EXPECT_EQ(back.nthreads, spec.nthreads);
  EXPECT_EQ(back.topk, spec.topk);
}

TEST(ServeProtocol, LookupSpecRejectsBadFields) {
  const auto rejects = [](const char* mutation, Json frame) {
    EXPECT_THROW(LookupSpec::from_json(frame), std::exception) << mutation;
  };
  LookupSpec good;
  good.kernel = "gemm";

  Json no_kernel = good.to_json();
  no_kernel.set("kernel", "");
  rejects("empty kernel", no_kernel);

  Json zero_topk = good.to_json();
  zero_topk.set("topk", 0);
  rejects("zero topk", zero_topk);

  Json negative_threads = good.to_json();
  negative_threads.set("nthreads", -1);
  rejects("negative nthreads", negative_threads);
}

// --- Framing hardening (distd::read_frame max_bytes) ----------------------

/// A connected socket pair for exercising read_frame against raw bytes.
struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { TVMBO_CHECK_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  void write_raw(const void* data, std::size_t size) {
    ASSERT_EQ(::write(fds[0], data, size), static_cast<ssize_t>(size));
  }
  /// Big-endian length prefix, as the wire format specifies.
  void write_prefix(std::uint32_t size) {
    const std::uint32_t be = htonl(size);
    write_raw(&be, sizeof(be));
  }
};

TEST(ServeProtocol, OversizedPrefixRejectedBeforeAllocation) {
  SocketPair pair;
  // Claims ~2 GiB; read_frame must reject on the prefix alone — no
  // payload ever arrives, so a buggy implementation would block or OOM.
  pair.write_prefix(0x7fffffffu);
  Json message;
  EXPECT_EQ(distd::read_frame(pair.fds[1], &message, /*timeout_ms=*/2000,
                              kServeMaxFrameBytes),
            FrameStatus::kTooLarge);
}

TEST(ServeProtocol, FrameOverServeCapButUnderTransportCapRejected) {
  SocketPair pair;
  pair.write_prefix(kServeMaxFrameBytes + 1);
  Json message;
  EXPECT_EQ(distd::read_frame(pair.fds[1], &message, /*timeout_ms=*/2000,
                              kServeMaxFrameBytes),
            FrameStatus::kTooLarge);
}

TEST(ServeProtocol, GarbagePayloadIsMalformed) {
  SocketPair pair;
  const std::string garbage = "{]this is not json![}";
  pair.write_prefix(static_cast<std::uint32_t>(garbage.size()));
  pair.write_raw(garbage.data(), garbage.size());
  Json message;
  EXPECT_EQ(distd::read_frame(pair.fds[1], &message, /*timeout_ms=*/2000,
                              kServeMaxFrameBytes),
            FrameStatus::kMalformed);
}

TEST(ServeProtocol, TruncatedFrameReportsClosed) {
  SocketPair pair;
  pair.write_prefix(100);
  pair.write_raw("partial", 7);
  ::close(pair.fds[0]);
  pair.fds[0] = -1;
  Json message;
  EXPECT_EQ(distd::read_frame(pair.fds[1], &message, /*timeout_ms=*/2000,
                              kServeMaxFrameBytes),
            FrameStatus::kClosed);
}

TEST(ServeProtocol, PartialFrameTimesOutWithoutConsuming) {
  SocketPair pair;
  pair.write_prefix(100);
  pair.write_raw("partial", 7);
  Json message;
  EXPECT_EQ(distd::read_frame(pair.fds[1], &message, /*timeout_ms=*/100,
                              kServeMaxFrameBytes),
            FrameStatus::kTimeout);
}

TEST(ServeProtocol, ValidFrameUnderCapStillReads) {
  SocketPair pair;
  Json frame = Json::object();
  frame.set("type", "job_list");
  ASSERT_EQ(distd::write_frame(pair.fds[0], frame), FrameStatus::kOk);
  Json message;
  ASSERT_EQ(distd::read_frame(pair.fds[1], &message, /*timeout_ms=*/2000,
                              kServeMaxFrameBytes),
            FrameStatus::kOk);
  EXPECT_EQ(distd::frame_type(message), "job_list");
}

// --- Hostile clients against a live server --------------------------------

bool worker_binary_available() {
  const std::string binary = distd::resolve_worker_binary("");
  if (binary.find('/') == std::string::npos) return false;
  return ::access(binary.c_str(), X_OK) == 0;
}

#define SKIP_WITHOUT_WORKER()                                        \
  do {                                                               \
    if (!worker_binary_available())                                  \
      GTEST_SKIP() << "tvmbo_worker binary not found; build the "    \
                      "tools targets first";                         \
  } while (0)

struct LiveServer {
  Scheduler scheduler;
  ServeServer server;

  static SchedulerOptions scheduler_options() {
    SchedulerOptions options;
    options.pool.num_workers = 1;
    options.pool.heartbeat_ms = 100;
    return options;
  }
  static ServerOptions server_options() {
    ServerOptions options;
    options.socket_path = "/tmp/tvmbo_serve_proto_" +
                          std::to_string(::getpid()) + ".sock";
    options.poll_ms = 50;
    return options;
  }

  LiveServer() : scheduler(scheduler_options()),
                 server(&scheduler, server_options()) {}
  ~LiveServer() {
    scheduler.drain();
    server.shutdown();
  }
};

/// The server must answer a framing violation with the matching typed
/// error frame and then close — the stream cannot be re-synchronized.
TEST(ServeProtocol, ServerSendsTypedErrorOnOversizedFrame) {
  SKIP_WITHOUT_WORKER();
  LiveServer live;
  distd::Socket conn = distd::Socket::connect(live.server.endpoint());
  const std::uint32_t be = htonl(kServeMaxFrameBytes + 1);
  ASSERT_EQ(::write(conn.fd(), &be, sizeof(be)),
            static_cast<ssize_t>(sizeof(be)));
  Json reply;
  ASSERT_EQ(distd::read_frame(conn.fd(), &reply, /*timeout_ms=*/5000),
            FrameStatus::kOk);
  EXPECT_EQ(distd::frame_type(reply), "error");
  EXPECT_EQ(reply.at("code").as_string(), "frame_too_large");
  // And then the connection dies.
  EXPECT_EQ(distd::read_frame(conn.fd(), &reply, /*timeout_ms=*/5000),
            FrameStatus::kClosed);
}

TEST(ServeProtocol, ServerSendsTypedErrorOnMalformedFrame) {
  SKIP_WITHOUT_WORKER();
  LiveServer live;
  distd::Socket conn = distd::Socket::connect(live.server.endpoint());
  const std::string garbage = "\x01\x02{{{{ not json";
  const std::uint32_t be = htonl(static_cast<std::uint32_t>(garbage.size()));
  ASSERT_EQ(::write(conn.fd(), &be, sizeof(be)),
            static_cast<ssize_t>(sizeof(be)));
  ASSERT_EQ(::write(conn.fd(), garbage.data(), garbage.size()),
            static_cast<ssize_t>(garbage.size()));
  Json reply;
  ASSERT_EQ(distd::read_frame(conn.fd(), &reply, /*timeout_ms=*/5000),
            FrameStatus::kOk);
  EXPECT_EQ(distd::frame_type(reply), "error");
  EXPECT_EQ(reply.at("code").as_string(), "malformed_frame");
}

TEST(ServeProtocol, ServerRejectsUnknownTypeAndBadSpecs) {
  SKIP_WITHOUT_WORKER();
  LiveServer live;
  {
    Json frame = Json::object();
    frame.set("type", "make_me_a_sandwich");
    distd::Socket conn = distd::Socket::connect(live.server.endpoint());
    ASSERT_EQ(distd::write_frame(conn.fd(), frame), FrameStatus::kOk);
    Json reply;
    ASSERT_EQ(distd::read_frame(conn.fd(), &reply, /*timeout_ms=*/5000),
              FrameStatus::kOk);
    EXPECT_EQ(reply.at("code").as_string(), "bad_request");
  }
  {
    JobSpec spec;
    spec.kernel = "gemm";
    Json frame = spec.to_json();
    frame.set("budget", -3);
    distd::Socket conn = distd::Socket::connect(live.server.endpoint());
    ASSERT_EQ(distd::write_frame(conn.fd(), frame), FrameStatus::kOk);
    Json reply;
    ASSERT_EQ(distd::read_frame(conn.fd(), &reply, /*timeout_ms=*/5000),
              FrameStatus::kOk);
    EXPECT_EQ(reply.at("code").as_string(), "bad_request");
  }
  {
    distd::Socket conn = distd::Socket::connect(live.server.endpoint());
    ASSERT_EQ(distd::write_frame(conn.fd(), job_status_frame(424242)),
              FrameStatus::kOk);
    Json reply;
    ASSERT_EQ(distd::read_frame(conn.fd(), &reply, /*timeout_ms=*/5000),
              FrameStatus::kOk);
    EXPECT_EQ(reply.at("code").as_string(), "unknown_job");
  }
}

/// Fuzz-style salvos: random byte blobs, random prefixes, truncated
/// writes. The server must survive all of them and still answer a
/// well-formed request afterwards.
TEST(ServeProtocol, ServerSurvivesFuzzSalvos) {
  SKIP_WITHOUT_WORKER();
  LiveServer live;
  Rng rng(20260807);
  for (int round = 0; round < 24; ++round) {
    distd::Socket conn = distd::Socket::connect(live.server.endpoint());
    const int shape = static_cast<int>(rng.uniform_int(3));
    if (shape == 0) {
      // Raw garbage, no framing at all.
      std::vector<unsigned char> blob(1 + rng.uniform_int(256));
      for (auto& byte : blob) {
        byte = static_cast<unsigned char>(rng.uniform_int(256));
      }
      (void)::write(conn.fd(), blob.data(), blob.size());
    } else if (shape == 1) {
      // Random prefix, maybe absurd, with a short payload behind it.
      const std::uint32_t claimed =
          static_cast<std::uint32_t>(rng.uniform_int(1 << 26));
      const std::uint32_t be = htonl(claimed);
      (void)::write(conn.fd(), &be, sizeof(be));
      const std::string junk = "junk-after-prefix";
      (void)::write(conn.fd(), junk.data(), junk.size());
    } else {
      // Truncated prefix then immediate hangup.
      const unsigned char half[2] = {0x00, 0x01};
      (void)::write(conn.fd(), half, sizeof(half));
    }
    // Drop the connection without reading any reply.
  }
  // The daemon still serves well-formed traffic.
  const Json list = job_list(live.server.endpoint());
  EXPECT_EQ(distd::frame_type(list), "list_reply");
  EXPECT_EQ(list.at("jobs").as_array().size(), 0u);
}

}  // namespace
}  // namespace tvmbo::serve
