#include <gtest/gtest.h>

#include <set>
#include <string>

#include "configspace/divisors.h"
#include "framework/code_mold.h"
#include "framework/figures.h"
#include "framework/session.h"
#include "kernels/polybench.h"
#include "runtime/swing_sim.h"

namespace tvmbo::framework {
namespace {

SessionOptions fast_options(std::size_t evals = 30) {
  SessionOptions options;
  options.max_evaluations = evals;
  options.seed = 7;
  return options;
}

TEST(Session, RunsRequestedEvaluations) {
  const autotvm::Task task =
      kernels::make_task("lu", kernels::Dataset::kLarge);
  runtime::SwingSimDevice device;
  AutotuningSession session(&task, &device, fast_options());
  const SessionResult result = session.run(StrategyKind::kYtopt);
  EXPECT_EQ(result.evaluations, 30u);
  EXPECT_EQ(result.db.size(), 30u);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_GT(result.total_time_s, 0.0);
  EXPECT_EQ(result.strategy, "ytopt");
}

TEST(Session, ElapsedTimeMonotonicPerStrategy) {
  const autotvm::Task task =
      kernels::make_task("cholesky", kernels::Dataset::kLarge);
  runtime::SwingSimDevice device;
  AutotuningSession session(&task, &device, fast_options());
  for (StrategyKind kind :
       {StrategyKind::kYtopt, StrategyKind::kAutotvmGa}) {
    const SessionResult result = session.run(kind);
    double previous = 0.0;
    for (const auto& record : result.db.records()) {
      EXPECT_GE(record.elapsed_s, previous);
      previous = record.elapsed_s;
    }
    EXPECT_NEAR(result.total_time_s, previous, result.total_time_s * 0.2);
  }
}

TEST(Session, BestMatchesDatabaseMinimum) {
  const autotvm::Task task =
      kernels::make_task("lu", kernels::Dataset::kLarge);
  runtime::SwingSimDevice device;
  AutotuningSession session(&task, &device, fast_options());
  const SessionResult result = session.run(StrategyKind::kAutotvmRandom);
  double minimum = std::numeric_limits<double>::infinity();
  for (const auto& record : result.db.records()) {
    minimum = std::min(minimum, record.runtime_s);
  }
  EXPECT_DOUBLE_EQ(result.best->runtime_s, minimum);
}

TEST(Session, XgbQuirkCapsEvaluations) {
  const autotvm::Task task =
      kernels::make_task("lu", kernels::Dataset::kLarge);
  runtime::SwingSimDevice device;
  SessionOptions options = fast_options(100);
  options.xgb_paper_eval_cap = 56;
  AutotuningSession session(&task, &device, options);
  const SessionResult result = session.run(StrategyKind::kAutotvmXgb);
  EXPECT_EQ(result.evaluations, 56u);
}

TEST(Session, ReproducibleForSameSeed) {
  const autotvm::Task task =
      kernels::make_task("lu", kernels::Dataset::kLarge);
  runtime::SwingSimDevice device_a(99), device_b(99);
  AutotuningSession a(&task, &device_a, fast_options());
  AutotuningSession b(&task, &device_b, fast_options());
  const SessionResult ra = a.run(StrategyKind::kYtopt);
  const SessionResult rb = b.run(StrategyKind::kYtopt);
  ASSERT_EQ(ra.db.size(), rb.db.size());
  for (std::size_t i = 0; i < ra.db.size(); ++i) {
    EXPECT_EQ(ra.db.record(i).tiles, rb.db.record(i).tiles);
    EXPECT_DOUBLE_EQ(ra.db.record(i).runtime_s, rb.db.record(i).runtime_s);
  }
}

TEST(Session, MaxTimeBudgetStopsEarly) {
  const autotvm::Task task =
      kernels::make_task("lu", kernels::Dataset::kExtraLarge);
  runtime::SwingSimDevice device;
  SessionOptions options = fast_options(100);
  options.max_time_s = 200.0;  // a handful of XL evaluations at most
  AutotuningSession session(&task, &device, options);
  const SessionResult result = session.run(StrategyKind::kAutotvmRandom);
  EXPECT_LT(result.evaluations, 100u);
  EXPECT_GT(result.evaluations, 0u);
}

TEST(Session, RunAllCoversFiveStrategies) {
  const autotvm::Task task =
      kernels::make_task("lu", kernels::Dataset::kLarge);
  runtime::SwingSimDevice device;
  AutotuningSession session(&task, &device, fast_options(20));
  const auto results = session.run_all();
  ASSERT_EQ(results.size(), 5u);
  std::set<std::string> names;
  for (const auto& result : results) names.insert(result.strategy);
  EXPECT_EQ(names.size(), 5u);
  EXPECT_TRUE(names.contains("ytopt"));
  EXPECT_TRUE(names.contains("autotvm-xgb"));
}

TEST(Session, StrategyNameMapping) {
  EXPECT_STREQ(strategy_name(StrategyKind::kYtopt), "ytopt");
  EXPECT_STREQ(strategy_name(StrategyKind::kAutotvmGridSearch),
               "autotvm-gridsearch");
  EXPECT_EQ(all_strategies().size(), 5u);
}

TEST(Figures, ProcessTableHasRowPerEvaluation) {
  const autotvm::Task task =
      kernels::make_task("lu", kernels::Dataset::kLarge);
  runtime::SwingSimDevice device;
  AutotuningSession session(&task, &device, fast_options(10));
  std::vector<SessionResult> results{session.run(StrategyKind::kYtopt),
                                     session.run(StrategyKind::kAutotvmGa)};
  const CsvTable table = process_over_time_table(results);
  EXPECT_EQ(table.num_rows(), 20u);
  EXPECT_EQ(table.header()[0], "strategy");
  EXPECT_EQ(table.cell(0, "strategy"), "ytopt");
}

TEST(Figures, MinimumTableOneRowPerStrategy) {
  const autotvm::Task task =
      kernels::make_task("lu", kernels::Dataset::kLarge);
  runtime::SwingSimDevice device;
  AutotuningSession session(&task, &device, fast_options(10));
  const auto results = session.run_all();
  const CsvTable table = minimum_runtimes_table(results);
  EXPECT_EQ(table.num_rows(), 5u);
}

TEST(Figures, BestSoFarIsNonIncreasing) {
  const autotvm::Task task =
      kernels::make_task("lu", kernels::Dataset::kLarge);
  runtime::SwingSimDevice device;
  AutotuningSession session(&task, &device, fast_options(15));
  std::vector<SessionResult> results{
      session.run(StrategyKind::kAutotvmRandom)};
  const CsvTable table = best_so_far_table(results);
  double previous = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    const double value = std::stod(table.cell(r, "best_so_far_s"));
    EXPECT_LE(value, previous + 1e-12);
    previous = value;
  }
}

TEST(Figures, TilesToString) {
  EXPECT_EQ(tiles_to_string({400, 50}), "400x50");
  EXPECT_EQ(tiles_to_string({1000, 32, 600, 2, 15, 40}),
            "(1000x32, 600x2, 15x40)");
  EXPECT_EQ(tiles_to_string({1, 2, 3}), "(1, 2, 3)");
}

TEST(Figures, RenderTableAlignsColumns) {
  CsvTable table({"a", "long_header"});
  table.add_row({"x", "1"});
  const std::string text = render_table(table);
  EXPECT_NE(text.find("| a "), std::string::npos);
  EXPECT_NE(text.find("| long_header "), std::string::npos);
}

TEST(Figures, YtoptResultsTableLayout) {
  const autotvm::Task task =
      kernels::make_task("lu", kernels::Dataset::kLarge);
  runtime::SwingSimDevice device;
  AutotuningSession session(&task, &device, fast_options(8));
  const SessionResult result = session.run(StrategyKind::kYtopt);
  const CsvTable table =
      ytopt_results_table(result, task.config.space());
  EXPECT_EQ(table.num_rows(), 8u);
  ASSERT_EQ(table.num_columns(), 4u);  // tile_y, tile_x, objective, elapsed
  EXPECT_EQ(table.header().back(), "elapsed_sec");
  // Tile values must be members of the divisor domain.
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    const long long tile = std::stoll(table.row(r)[0]);
    EXPECT_EQ(2000 % tile, 0) << "tile " << tile;
  }
  // elapsed_sec is non-decreasing (sequential ytopt evaluations).
  double previous = 0.0;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    const double elapsed = std::stod(table.cell(r, "elapsed_sec"));
    EXPECT_GE(elapsed, previous);
    previous = elapsed;
  }
}

TEST(CodeMold, RendersPaperMold) {
  const auto dims = kernels::polybench_dims(
      "3mm", kernels::Dataset::kExtraLarge);
  const cs::ConfigurationSpace space = kernels::build_space("3mm", dims);
  CodeMold mold(paper_3mm_mold(), &space);
  EXPECT_EQ(mold.placeholders().size(), 6u);
  cs::Configuration config = space.default_configuration();
  config.set_index(0, 16);  // P0 -> 400
  const std::string code = mold.render(config);
  EXPECT_NE(code.find("split(y, 400)"), std::string::npos);
  EXPECT_EQ(code.find("#P"), std::string::npos);  // fully substituted
}

TEST(CodeMold, UnknownPlaceholderThrows) {
  cs::ConfigurationSpace space;
  space.add(cs::tile_factor_param("P0", 8));
  EXPECT_THROW(CodeMold("split(y, #P7)", &space), CheckError);
}

TEST(CodeMold, MoldWithoutPlaceholdersThrows) {
  cs::ConfigurationSpace space;
  space.add(cs::tile_factor_param("P0", 8));
  EXPECT_THROW(CodeMold("no placeholders here", &space), CheckError);
}

}  // namespace
}  // namespace tvmbo::framework
