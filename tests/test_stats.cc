#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/logging.h"

namespace tvmbo {
namespace {

TEST(Stats, MeanAndVariance) {
  const std::vector<double> values{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(values), 2.5);
  EXPECT_DOUBLE_EQ(variance(values), 1.25);
  EXPECT_DOUBLE_EQ(stddev(values), std::sqrt(1.25));
}

TEST(Stats, EmptyMeanIsZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
}

TEST(Stats, MinMaxArg) {
  const std::vector<double> values{3.0, 1.0, 4.0, 1.5};
  EXPECT_DOUBLE_EQ(min_value(values), 1.0);
  EXPECT_DOUBLE_EQ(max_value(values), 4.0);
  EXPECT_EQ(argmin(values), 1u);
  EXPECT_EQ(argmax(values), 2u);
}

TEST(Stats, MinOfEmptyThrows) {
  EXPECT_THROW(min_value({}), CheckError);
  EXPECT_THROW(argmin({}), CheckError);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> values{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(median(values), 5.0);
}

TEST(Stats, QuantileUnsortedInput) {
  const std::vector<double> values{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(values), 3.0);
}

TEST(Stats, QuantileOutOfRangeThrows) {
  const std::vector<double> values{1.0};
  EXPECT_THROW(quantile(values, 1.5), CheckError);
}

TEST(Stats, RunningMinMonotone) {
  const std::vector<double> values{5, 7, 3, 9, 2, 8};
  const std::vector<double> expected{5, 5, 3, 3, 2, 2};
  EXPECT_EQ(running_min(values), expected);
}

TEST(Stats, PrefixSum) {
  const std::vector<double> values{1, 2, 3};
  const std::vector<double> expected{1, 3, 6};
  EXPECT_EQ(prefix_sum(values), expected);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{2, 4, 6, 8};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  const std::vector<double> c{8, 6, 4, 2};
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerateIsZero) {
  const std::vector<double> a{1, 1, 1};
  const std::vector<double> b{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(a, b), 0.0);
}

TEST(Stats, SpearmanMonotoneNonlinear) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{1, 8, 27, 64, 125};  // monotone, nonlinear
  EXPECT_NEAR(spearman(a, b), 1.0, 1e-12);
}

TEST(Stats, SpearmanHandlesTies) {
  const std::vector<double> a{1, 2, 2, 3};
  const std::vector<double> b{10, 20, 20, 30};
  EXPECT_NEAR(spearman(a, b), 1.0, 1e-12);
}

TEST(Stats, RSquaredPerfectAndBaseline) {
  const std::vector<double> targets{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(r_squared(targets, targets), 1.0);
  const std::vector<double> mean_pred{2.5, 2.5, 2.5, 2.5};
  EXPECT_DOUBLE_EQ(r_squared(mean_pred, targets), 0.0);
}

TEST(Stats, SizeMismatchThrows) {
  const std::vector<double> a{1, 2};
  const std::vector<double> b{1};
  EXPECT_THROW(pearson(a, b), CheckError);
  EXPECT_THROW(r_squared(a, b), CheckError);
}

}  // namespace
}  // namespace tvmbo
