#include "common/string_util.h"

#include <gtest/gtest.h>

#include "common/logging.h"

namespace tvmbo {
namespace {

TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, JoinRoundTrip) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(join(parts, ", "), "x, y, z");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(starts_with("autotvm-xgb", "autotvm"));
  EXPECT_FALSE(starts_with("xgb", "autotvm"));
  EXPECT_TRUE(ends_with("results.csv", ".csv"));
  EXPECT_FALSE(ends_with("csv", "results.csv"));
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(format_double(1.659, 3), "1.659");
  EXPECT_EQ(format_double(2.0, 1), "2.0");
}

TEST(StringUtil, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("no match", "x", "y"), "no match");
  // Replacement containing the pattern must not recurse.
  EXPECT_EQ(replace_all("ab", "a", "aa"), "aab");
}

TEST(StringUtil, FindPlaceholders) {
  const auto names = find_placeholders(
      "split(y, #P0)\nsplit(x, #P1)\nsplit(z, #P10) #P0 again");
  ASSERT_EQ(names.size(), 3u);  // deduplicated
  EXPECT_EQ(names[0], "#P0");
  EXPECT_EQ(names[1], "#P1");
  EXPECT_EQ(names[2], "#P10");
}

TEST(StringUtil, SubstitutePlaceholders) {
  const std::map<std::string, std::string> values{{"#P0", "400"},
                                                  {"#P1", "50"}};
  EXPECT_EQ(substitute_placeholders("split(y, #P0); split(x, #P1)", values),
            "split(y, 400); split(x, 50)");
}

TEST(StringUtil, SubstituteLongestPlaceholderFirst) {
  // #P10 must not be corrupted by the #P1 substitution.
  const std::map<std::string, std::string> values{{"#P1", "7"},
                                                  {"#P10", "42"}};
  EXPECT_EQ(substitute_placeholders("#P10 #P1", values), "42 7");
}

TEST(StringUtil, SubstituteUnboundPlaceholderThrows) {
  const std::map<std::string, std::string> values{{"#P0", "1"}};
  EXPECT_THROW(substitute_placeholders("#P0 #P1", values), CheckError);
}

}  // namespace
}  // namespace tvmbo
