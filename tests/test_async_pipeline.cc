// The completion-driven streaming measurement pipeline: submit/wait_any
// slot refill (no wave barrier), straggler overlap, fixed-seed
// determinism equivalence with the batch path, dispatch/complete trace
// events, and the TraceLog timestamp-ordering regression.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/timer.h"
#include "framework/session.h"
#include "kernels/polybench.h"
#include "runtime/cpu_device.h"
#include "runtime/measure_runner.h"
#include "runtime/swing_sim.h"
#include "runtime/trace_log.h"
#include "tuners/measure_loop.h"
#include "ytopt/bayes_opt.h"

namespace tvmbo::runtime {
namespace {

Workload lu_workload(std::int64_t n) {
  Workload w;
  w.kernel = "lu";
  w.size_name = "large";
  w.dims = {n};
  return w;
}

/// CpuDevice input whose run sleeps for `ms` milliseconds.
MeasureInput sleep_input(int ms) {
  MeasureInput input;
  input.workload = lu_workload(8);
  input.run = [ms] {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  };
  return input;
}

TEST(AsyncPipeline, SerialStreamingMatchesBatchInSubmissionOrder) {
  // The fixed-seed determinism mode: a non-parallel runner has one
  // streaming slot, so completions arrive in submission order with
  // results identical to the batch path on the stateful sim device.
  const Workload w = lu_workload(2000);
  const auto space = kernels::build_space("lu", w.dims);
  Rng rng(23);
  std::vector<MeasureInput> inputs;
  for (int i = 0; i < 10; ++i) {
    MeasureInput input;
    input.workload = w;
    input.tiles = space.values_int(space.sample(rng));
    inputs.push_back(std::move(input));
  }
  MeasureOption option;
  option.repeat = 2;

  SwingSimDevice batch_device(2023);
  MeasureRunner batch_runner(&batch_device);
  const auto batch_results = batch_runner.measure_batch(inputs, option);

  SwingSimDevice stream_device(2023);
  MeasureRunner stream_runner(&stream_device);
  EXPECT_EQ(stream_runner.async_slots(), 1u);
  std::vector<MeasureRunner::Ticket> tickets;
  for (const MeasureInput& input : inputs) {
    tickets.push_back(stream_runner.submit(input, option));
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto completion = stream_runner.wait_any();
    EXPECT_EQ(completion.ticket, tickets[i]) << "completion order";
    EXPECT_DOUBLE_EQ(completion.result.runtime_s,
                     batch_results[i].runtime_s);
    EXPECT_DOUBLE_EQ(completion.result.energy_j, batch_results[i].energy_j);
  }
  EXPECT_EQ(stream_runner.in_flight(), 0u);
}

TEST(AsyncPipeline, StragglerDoesNotIdleOtherSlots) {
  // One slow trial plus a stream of fast ones on 4 slots: every fast
  // trial must complete while the straggler is still running — the batch
  // path's wave barrier would hold all of them hostage.
  CpuDevice device;
  MeasureRunnerOptions options;
  options.parallel = true;
  ThreadPool pool(4);
  MeasureRunner runner(&device, options, &pool);
  ASSERT_GE(runner.async_slots(), 4u);
  MeasureOption option;
  option.repeat = 1;

  const Stopwatch wall;
  const MeasureRunner::Ticket slow = runner.submit(sleep_input(400), option);
  std::set<MeasureRunner::Ticket> fast;
  for (int i = 0; i < 9; ++i) {
    fast.insert(runner.submit(sleep_input(2), option));
  }
  // All nine fast completions land while the straggler sleeps.
  for (int i = 0; i < 9; ++i) {
    const auto completion = runner.wait_any();
    EXPECT_NE(completion.ticket, slow) << "straggler finished first?";
    EXPECT_EQ(fast.erase(completion.ticket), 1u);
  }
  EXPECT_LT(wall.elapsed_seconds(), 0.35)
      << "fast trials were serialized behind the straggler";
  EXPECT_EQ(runner.wait_any().ticket, slow);
  EXPECT_EQ(runner.in_flight(), 0u);
}

TEST(AsyncPipeline, StreamingBeatsWaveBarrierOnHeterogeneousLatency) {
  // ISSUE acceptance: equal trial budget, heterogeneous latencies, >= 4
  // slots — streaming completes in measurably less wall-clock than the
  // batch path, whose every wave waits for its slowest member.
  CpuDevice device;
  MeasureRunnerOptions options;
  options.parallel = true;
  ThreadPool pool(4);
  MeasureRunner runner(&device, options, &pool);
  ASSERT_GE(runner.async_slots(), 4u);
  MeasureOption option;
  option.repeat = 1;

  // 16 trials, one 100 ms straggler per 4-trial wave, the rest 2 ms.
  std::vector<MeasureInput> inputs;
  for (int i = 0; i < 16; ++i) {
    inputs.push_back(sleep_input(i % 4 == 0 ? 100 : 2));
  }

  const Stopwatch batch_wall;
  runner.measure_batch(inputs, option);
  const double batch_s = batch_wall.elapsed_seconds();

  const Stopwatch stream_wall;
  for (const MeasureInput& input : inputs) {
    runner.submit(input, option);
  }
  for (int i = 0; i < 16; ++i) runner.wait_any();
  const double stream_s = stream_wall.elapsed_seconds();

  // Batch: 4 waves x ~100 ms >= ~400 ms. Streaming: the four stragglers
  // overlap across slots, ~100-250 ms. A generous margin keeps the
  // comparison robust on loaded CI hosts.
  EXPECT_LT(stream_s, 0.6 * batch_s)
      << "streaming " << stream_s << " s vs batch " << batch_s << " s";
}

TEST(AsyncPipeline, DispatchAndCompleteTraceEventsBracketEachTrial) {
  std::ostringstream sink;
  TraceLog trace(&sink);
  SwingSimDevice device(7);
  MeasureRunnerOptions options;
  options.trace = &trace;
  options.strategy = "ytopt";
  MeasureRunner runner(&device, options);

  const Workload w = lu_workload(2000);
  const auto space = kernels::build_space("lu", w.dims);
  Rng rng(29);
  MeasureOption option;
  for (int i = 0; i < 3; ++i) {
    MeasureInput input;
    input.workload = w;
    input.tiles = space.values_int(space.sample(rng));
    runner.submit(input, option);
  }
  for (int i = 0; i < 3; ++i) runner.wait_any();

  std::map<std::string, int> counts;
  std::map<std::size_t, int> order;  // trial -> dispatch seen before complete
  double last_ts = -1.0;
  for (const Json& event : Json::parse_lines(sink.str())) {
    const std::string name = event.at("event").as_string();
    counts[name]++;
    EXPECT_EQ(event.at("strategy").as_string(), "ytopt");
    EXPECT_GE(event.at("ts").as_double(), last_ts);
    last_ts = event.at("ts").as_double();
    const auto trial = static_cast<std::size_t>(event.at("trial").as_int());
    if (name == "dispatch") order[trial]++;
    if (name == "complete") {
      EXPECT_EQ(order[trial], 1) << "complete without dispatch";
      EXPECT_TRUE(event.at("valid").as_bool());
    }
  }
  EXPECT_EQ(counts["proposed"], 3);
  EXPECT_EQ(counts["dispatch"], 3);
  EXPECT_EQ(counts["complete"], 3);
  EXPECT_EQ(counts["result"], 3);
}

TEST(AsyncPipeline, DestructorDrainsInFlightTrials) {
  CpuDevice device;
  MeasureRunnerOptions options;
  options.parallel = true;
  ThreadPool pool(4);
  std::atomic<int> finished{0};
  {
    MeasureRunner runner(&device, options, &pool);
    MeasureOption option;
    option.repeat = 1;
    for (int i = 0; i < 6; ++i) {
      MeasureInput input;
      input.workload = lu_workload(8);
      input.run = [&finished] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        finished.fetch_add(1);
      };
      runner.submit(input, option);
    }
    // No wait_any: the destructor must block until every dispatched job
    // is done (they capture the runner), discarding the results.
  }
  EXPECT_GT(finished.load(), 0);
}

TEST(AsyncPipeline, AsyncLoopMatchesBatchLoopFixedSeed) {
  // run_measure_loop_async with a serial runner reproduces the batch
  // loop's trajectory exactly at batch size 1 (strict ask/measure/tell
  // alternation, empty pending set at every refit).
  const Workload w = lu_workload(2000);
  const auto space = kernels::build_space("lu", w.dims);
  auto make_input = [&](const cs::Configuration& config) {
    MeasureInput input;
    input.workload = w;
    input.tiles = space.values_int(config);
    return input;
  };
  tuners::MeasureLoopOptions loop_options;
  loop_options.max_evaluations = 30;
  loop_options.batch_size = 1;

  SwingSimDevice batch_device(2023);
  MeasureRunner batch_runner(&batch_device);
  ytopt::BayesianOptimizer batch_bo(&space, 99);
  const auto batch = tuners::run_measure_loop(batch_bo, batch_runner,
                                              make_input, loop_options);

  SwingSimDevice stream_device(2023);
  MeasureRunner stream_runner(&stream_device);
  ytopt::BayesianOptimizer stream_bo(&space, 99);
  const auto streamed = tuners::run_measure_loop_async(
      stream_bo, stream_runner, make_input, loop_options);

  ASSERT_EQ(batch.evaluations, streamed.evaluations);
  ASSERT_EQ(batch.trials.size(), streamed.trials.size());
  for (std::size_t i = 0; i < batch.trials.size(); ++i) {
    EXPECT_TRUE(batch.trials[i].config == streamed.trials[i].config)
        << "trajectory diverged at trial " << i;
    EXPECT_DOUBLE_EQ(batch.trials[i].runtime_s, streamed.trials[i].runtime_s);
  }
}

TEST(AsyncPipeline, AsyncLoopKeepsSlotsFullWithParallelRunner) {
  // With 4 slots and a liar-imputing tuner the async loop completes the
  // budget, never proposes a config twice, and tells every result back.
  const Workload w = lu_workload(2000);
  const auto space = kernels::build_space("lu", w.dims);
  auto make_input = [&](const cs::Configuration& config) {
    MeasureInput input;
    input.workload = w;
    input.tiles = space.values_int(config);
    input.run = [] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    };
    return input;
  };
  CpuDevice device;
  MeasureRunnerOptions options;
  options.parallel = true;
  ThreadPool pool(4);
  MeasureRunner runner(&device, options, &pool);
  ytopt::BayesianOptimizer bo(&space, 5);
  tuners::MeasureLoopOptions loop_options;
  loop_options.max_evaluations = 40;
  const auto out =
      tuners::run_measure_loop_async(bo, runner, make_input, loop_options);
  EXPECT_EQ(out.evaluations, 40u);
  EXPECT_EQ(bo.pending_count(), 0u);
  std::set<std::uint64_t> seen;
  for (const auto& trial : out.trials) {
    EXPECT_TRUE(seen.insert(trial.config.hash()).second)
        << "config measured twice";
  }
}

TEST(AsyncPipeline, AsyncSessionMatchesBatchSessionTrajectory) {
  // Session-level fixed-seed determinism: --async without --parallel
  // visits exactly the configurations of the batch path (ytopt at batch
  // size 1); only the time columns differ (wall vs modeled clock).
  const autotvm::Task task =
      kernels::make_task("lu", kernels::Dataset::kLarge);
  auto run = [&](bool async) {
    SwingSimDevice device(2023);
    framework::SessionOptions options;
    options.max_evaluations = 25;
    options.async = async;
    framework::AutotuningSession session(&task, &device, options);
    return session.run(framework::StrategyKind::kYtopt);
  };
  const auto batch = run(false);
  const auto async = run(true);
  ASSERT_EQ(batch.db.records().size(), async.db.records().size());
  for (std::size_t i = 0; i < batch.db.records().size(); ++i) {
    EXPECT_EQ(batch.db.records()[i].tiles, async.db.records()[i].tiles)
        << "evaluation " << i << " diverged";
    EXPECT_DOUBLE_EQ(batch.db.records()[i].runtime_s,
                     async.db.records()[i].runtime_s);
  }
}

TEST(TraceLog, TimestampsMonotoneAcrossConcurrentBurst) {
  // Regression: record() used to read the clock before taking the lock,
  // so a later-stamped recorder could win the lock and the JSONL lines
  // came out with non-monotonic "ts" under parallel runners.
  std::ostringstream sink;
  TraceLog trace(&sink);
  constexpr int kThreads = 8;
  constexpr int kEventsPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace, t] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        Json event = Json::object();
        event.set("event", "burst");
        event.set("thread", t);
        event.set("i", i);
        trace.record(std::move(event));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const std::vector<Json> events = Json::parse_lines(sink.str());
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads * kEventsPerThread));
  double last_ts = -1.0;
  for (const Json& event : events) {
    const double ts = event.at("ts").as_double();
    EXPECT_GE(ts, last_ts) << "non-monotonic trace timestamps";
    last_ts = ts;
  }
}

}  // namespace
}  // namespace tvmbo::runtime
