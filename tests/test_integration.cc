// End-to-end reproduction shape tests: run the paper's full 100-evaluation,
// 5-strategy experiments on the simulated Swing device and assert the
// qualitative claims of §5 hold (who wins, who is slowest, the XGB cap,
// process-time ordering at extralarge sizes).
#include <gtest/gtest.h>

#include <limits>
#include <map>

#include "framework/figures.h"
#include "framework/session.h"
#include "kernels/polybench.h"
#include "runtime/swing_sim.h"

namespace tvmbo {
namespace {

using framework::AutotuningSession;
using framework::SessionOptions;
using framework::SessionResult;
using framework::StrategyKind;

std::map<std::string, SessionResult> run_experiment(
    const std::string& kernel, kernels::Dataset dataset,
    std::uint64_t seed = 2023) {
  const autotvm::Task task = kernels::make_task(kernel, dataset);
  runtime::SwingSimDevice device(seed);
  SessionOptions options;
  options.max_evaluations = 100;
  options.xgb_paper_eval_cap = 56;
  options.seed = seed;
  AutotuningSession session(&task, &device, options);
  std::map<std::string, SessionResult> by_name;
  for (auto& result : session.run_all()) {
    by_name.emplace(result.strategy, std::move(result));
  }
  return by_name;
}

double exhaustive_min(const std::string& kernel, kernels::Dataset dataset) {
  const auto workload = kernels::make_workload(kernel, dataset);
  const auto space = kernels::build_space(kernel, workload.dims);
  runtime::SwingSimDevice device;
  double best = std::numeric_limits<double>::infinity();
  for (std::uint64_t flat = 0; flat < space.cardinality(); ++flat) {
    const auto tiles = space.values_int(space.from_flat_index(flat));
    best = std::min(best, device.surface_runtime(workload, tiles));
  }
  return best;
}

TEST(Integration, LuLargeYtoptFindsNearOptimal) {
  const auto results = run_experiment("lu", kernels::Dataset::kLarge);
  const double optimum = exhaustive_min("lu", kernels::Dataset::kLarge);
  const auto& ytopt = results.at("ytopt");
  ASSERT_TRUE(ytopt.best.has_value());
  // Fig 5: ytopt reaches the global optimum region (within 5%).
  EXPECT_LT(ytopt.best->runtime_s, optimum * 1.05);
}

TEST(Integration, LuLargeGridSearchIsWorstFinder) {
  const auto results = run_experiment("lu", kernels::Dataset::kLarge);
  const double grid = results.at("autotvm-gridsearch").best->runtime_s;
  int better_than_grid = 0;
  for (const auto& [name, result] : results) {
    if (name == "autotvm-gridsearch") continue;
    if (result.best->runtime_s <= grid) ++better_than_grid;
  }
  // "grid search tuner performed the worst for all the experiments":
  // at least 3 of the other 4 strategies beat it.
  EXPECT_GE(better_than_grid, 3);
}

TEST(Integration, XgbStopsAt56Evaluations) {
  const auto results = run_experiment("lu", kernels::Dataset::kLarge);
  EXPECT_EQ(results.at("autotvm-xgb").evaluations, 56u);
  EXPECT_EQ(results.at("ytopt").evaluations, 100u);
  EXPECT_EQ(results.at("autotvm-random").evaluations, 100u);
}

TEST(Integration, ExtraLargeYtoptHasSmallestProcessTime) {
  // §5: "ytopt ... took the smallest autotuning process time with the
  // extralarge problem sizes". Compare against the full-100-eval tuners
  // (XGB stops at 56, so its wall time is not comparable).
  for (const char* kernel : {"lu", "cholesky"}) {
    const auto results =
        run_experiment(kernel, kernels::Dataset::kExtraLarge);
    const double ytopt_time = results.at("ytopt").total_time_s;
    for (const char* other :
         {"autotvm-random", "autotvm-gridsearch", "autotvm-ga"}) {
      EXPECT_LT(ytopt_time, results.at(other).total_time_s)
          << kernel << ": ytopt vs " << other;
    }
  }
}

TEST(Integration, CholeskyXlBestNearPaperValue) {
  const auto results =
      run_experiment("cholesky", kernels::Dataset::kExtraLarge);
  double best = std::numeric_limits<double>::infinity();
  for (const auto& [name, result] : results) {
    best = std::min(best, result.best->runtime_s);
  }
  // Fig 11: paper best 13.99 s; calibrated surface minimum matches, and
  // at least one strategy must get within 15% of it.
  EXPECT_NEAR(best, 13.99, 13.99 * 0.15);
}

TEST(Integration, LuXlBestNearPaperValue) {
  const auto results = run_experiment("lu", kernels::Dataset::kExtraLarge);
  const auto& ytopt = results.at("ytopt");
  // Fig 7: 13.77 s.
  EXPECT_NEAR(ytopt.best->runtime_s, 13.77, 13.77 * 0.15);
}

TEST(Integration, ThreeMmXlTopStrategiesWithinOnePercent) {
  // Fig 13's signature: XGB (30.99 s) and ytopt (31.1 s) land within a
  // fraction of a percent of each other on the big plateau.
  const auto results = run_experiment("3mm", kernels::Dataset::kExtraLarge);
  const double ytopt = results.at("ytopt").best->runtime_s;
  const double xgb = results.at("autotvm-xgb").best->runtime_s;
  EXPECT_LT(std::abs(ytopt - xgb) / std::min(ytopt, xgb), 0.15);
  // And both in the paper's ~31 s regime.
  EXPECT_NEAR(std::min(ytopt, xgb), 31.0, 31.0 * 0.2);
}

TEST(Integration, ResultsAreSeedReproducible) {
  const auto a = run_experiment("lu", kernels::Dataset::kLarge, 5);
  const auto b = run_experiment("lu", kernels::Dataset::kLarge, 5);
  for (const auto& [name, result] : a) {
    EXPECT_DOUBLE_EQ(result.best->runtime_s,
                     b.at(name).best->runtime_s)
        << name;
  }
}

TEST(Integration, PerfDatabaseRoundTripsThroughJson) {
  const auto results = run_experiment("lu", kernels::Dataset::kLarge);
  const auto& db = results.at("ytopt").db;
  const auto restored =
      runtime::PerfDatabase::from_json_lines(db.to_json_lines());
  ASSERT_EQ(restored.size(), db.size());
  EXPECT_DOUBLE_EQ(restored.best()->runtime_s, db.best()->runtime_s);
}

}  // namespace
}  // namespace tvmbo
