// Exact dependence solver battery: Presburger-core unit tests, upgraded
// previously-unprovable patterns, witness replay, graceful-unknown
// blow-up behavior, structural proof-cache differential runs, and an
// oracle fuzz suite that checks every solver verdict against brute-force
// enumeration of the iteration space.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/config_screen.h"
#include "analysis/dependence.h"
#include "analysis/presburger.h"
#include "analysis/proof_cache.h"
#include "analysis/verify.h"
#include "analysis/witness.h"
#include "common/rng.h"
#include "kernels/polybench.h"
#include "kernels/te_programs.h"
#include "te/ir.h"
#include "te/printer.h"
#include "te/tensor.h"

namespace tvmbo {
namespace {

using analysis::DependenceOptions;
using analysis::LoopProof;
using analysis::PresburgerSystem;
using analysis::ProofCache;
using analysis::SolveResult;
using analysis::SolverLimits;
using analysis::SolveStatus;
using analysis::Verdict;
using analysis::Violation;

// ---------------------------------------------------------------------------
// Presburger core

TEST(AnalysisExactSolver, SatisfiableSystemYieldsValidAssignment) {
  PresburgerSystem sys;
  const std::size_t x = sys.add_var("x", 0, 3);
  const std::size_t y = sys.add_var("y", 0, 3);
  sys.add_equality({1, 1}, -5);     // x + y == 5
  sys.add_inequality({1, -1}, 0);   // x >= y
  const SolveResult result = sys.solve();
  ASSERT_EQ(result.status, SolveStatus::kSat);
  ASSERT_EQ(result.assignment.size(), 2u);
  EXPECT_EQ(result.assignment[x] + result.assignment[y], 5);
  EXPECT_GE(result.assignment[x], result.assignment[y]);
  EXPECT_GE(result.assignment[x], 0);
  EXPECT_LE(result.assignment[x], 3);
}

TEST(AnalysisExactSolver, GcdDivisibilityRefutesParityConflict) {
  PresburgerSystem sys;
  sys.add_var("x", -100, 100);
  sys.add_var("y", -100, 100);
  sys.add_equality({2, -2}, -1);  // 2x - 2y == 1: gcd 2 does not divide 1
  EXPECT_EQ(sys.solve().status, SolveStatus::kUnsat);
}

TEST(AnalysisExactSolver, PropagationRefutesOutOfBoundsDemand) {
  PresburgerSystem sys;
  sys.add_var("x", 0, 3);
  sys.add_inequality({1}, -5);  // x >= 5 but x <= 3
  EXPECT_EQ(sys.solve().status, SolveStatus::kUnsat);
}

TEST(AnalysisExactSolver, FmeRefutesContradictoryOrdering) {
  PresburgerSystem sys;
  sys.add_var("x", -1000, 1000);
  sys.add_var("y", -1000, 1000);
  sys.add_inequality({1, -1}, -1);  // x - y >= 1
  sys.add_inequality({-1, 1}, 0);   // y - x >= 0
  EXPECT_EQ(sys.solve().status, SolveStatus::kUnsat);
}

TEST(AnalysisExactSolver, EqualityEliminationReconstructsWitness) {
  PresburgerSystem sys;
  const std::size_t x = sys.add_var("x", 0, 5);
  const std::size_t y = sys.add_var("y", 0, 9);
  const std::size_t z = sys.add_var("z", 0, 9);
  sys.add_equality({1, -1, 0}, -1);   // x == y + 1 (unit coeffs: eliminated)
  sys.add_equality({0, 1, -1}, -2);   // y == z + 2
  sys.add_inequality({1, 1, 1}, -9);  // x + y + z >= 9
  const SolveResult result = sys.solve();
  ASSERT_EQ(result.status, SolveStatus::kSat);
  // Every original constraint must hold on the reconstructed assignment.
  EXPECT_EQ(result.assignment[x], result.assignment[y] + 1);
  EXPECT_EQ(result.assignment[y], result.assignment[z] + 2);
  EXPECT_GE(result.assignment[x] + result.assignment[y] +
                result.assignment[z],
            9);
  EXPECT_GE(result.assignment[z], 0);
  EXPECT_LE(result.assignment[x], 5);
}

// Frobenius-style adversarial instance: 6x + 10y + 15z == 29 has no
// non-negative solution (29 is the Frobenius number of {6,10,15}), the
// coefficient gcd is 1 so the divisibility test passes, and rationally the
// system is satisfiable so FME cannot refute it. Spread over 15 variables
// the complete search needs far more nodes than the budget allows — the
// solver must answer kUnknown, never hang and never guess.
TEST(AnalysisExactSolver, FrobeniusSearchExhaustsBudgetGracefully) {
  PresburgerSystem sys;
  const std::int64_t pattern[3] = {6, 10, 15};
  std::vector<std::int64_t> coeffs;
  for (int i = 0; i < 15; ++i) {
    sys.add_var("x" + std::to_string(i), 0, 50);
    coeffs.push_back(pattern[i % 3]);
  }
  sys.add_equality(coeffs, -29);
  // Sanity: with an ample budget the complete search refutes it exactly.
  EXPECT_EQ(sys.solve().status, SolveStatus::kUnsat);
  // With a starved budget the search must give up gracefully, not guess.
  SolverLimits limits;
  limits.max_search_nodes = 10;
  const SolveResult result = sys.solve(limits);
  EXPECT_EQ(result.status, SolveStatus::kUnknown);
  EXPECT_FALSE(result.note.empty());
  EXPECT_LE(result.search_nodes, limits.max_search_nodes + 16);
}

TEST(AnalysisExactSolver, FmeBlowupCapFallsThroughToBudgetedSearch) {
  PresburgerSystem sys;
  const std::int64_t pattern[3] = {6, 10, 15};
  std::vector<std::int64_t> coeffs;
  for (int i = 0; i < 12; ++i) {
    sys.add_var("x" + std::to_string(i), 0, 50);
    coeffs.push_back(pattern[i % 3]);
  }
  sys.add_equality(coeffs, -29);
  // Loose pairwise orderings bloat the FME working set past the tiny cap,
  // so elimination is abandoned and the (also tiny) search budget decides.
  for (int i = 0; i + 1 < 12; ++i) {
    std::vector<std::int64_t> pair(12, 0);
    pair[i] = 1;
    pair[i + 1] = -1;
    sys.add_inequality(pair, 50);
  }
  SolverLimits limits;
  limits.max_fme_constraints = 4;
  limits.max_search_nodes = 200;
  const SolveResult result = sys.solve(limits);
  EXPECT_EQ(result.status, SolveStatus::kUnknown);
}

// ---------------------------------------------------------------------------
// IR helpers for hand-built loop nests

te::Stmt parallel_store_loop(const te::Var& p, std::int64_t extent,
                             te::Stmt body) {
  return te::make_for(p, extent, te::ForKind::kParallel, std::move(body));
}

LoopProof proof_for(const std::vector<LoopProof>& proofs,
                    const te::Var& var) {
  for (const LoopProof& proof : proofs) {
    if (proof.loop->var.get() == var.get()) return proof;
  }
  ADD_FAILURE() << "no proof found for loop var " << var->name;
  return LoopProof{};
}

// ---------------------------------------------------------------------------
// Upgraded patterns: legal programs the interval rules alone cannot prove

// Coupled indices c1*i + c2*j: the coefficient rule fails (the residual
// 5*j spans more than |3|) and separation fails (ranges overlap), but
// 3*dp + 5*dj == 0 has no solution with dp != 0 over these extents.
TEST(AnalysisExactRace, CoupledIndicesProveSafeViaSolver) {
  const te::Var p = te::make_var("p");
  const te::Var j = te::make_var("j");
  const te::Tensor a = te::placeholder({30}, "A");
  const te::Expr index =
      te::make_int(3) * te::Expr(p) + te::make_int(5) * te::Expr(j);
  const te::Stmt store = te::make_store(a, {index}, te::make_float(1.0));
  const te::Stmt root = parallel_store_loop(
      p, 5, te::make_for(j, 3, te::ForKind::kSerial, store));
  const std::vector<LoopProof> proofs = analysis::analyze_parallel_loops(root);
  const LoopProof& proof = proof_for(proofs, p);
  EXPECT_EQ(proof.verdict, Verdict::kSafe);
  EXPECT_TRUE(proof.proven);
  EXPECT_NE(proof.detail.find("exact solver"), std::string::npos)
      << proof.detail;
}

// Split-tail modulo residue: A[(4p + j) mod 20] is the identity map over
// these extents, but the mod makes the dimension non-affine so the
// interval rules skip it entirely; the solver linearizes the mod through
// an exact quotient/remainder pair and proves disjointness.
TEST(AnalysisExactRace, SplitTailModuloProvesSafeViaSolver) {
  const te::Var p = te::make_var("p");
  const te::Var j = te::make_var("j");
  const te::Tensor a = te::placeholder({20}, "A");
  const te::Expr linear =
      te::make_int(4) * te::Expr(p) + te::Expr(j);
  const te::Expr index = te::floor_mod(linear, te::make_int(20));
  const te::Stmt store = te::make_store(a, {index}, te::make_float(1.0));
  const te::Stmt root = parallel_store_loop(
      p, 5, te::make_for(j, 4, te::ForKind::kSerial, store));
  const LoopProof& proof =
      proof_for(analysis::analyze_parallel_loops(root), p);
  EXPECT_EQ(proof.verdict, Verdict::kSafe);
  EXPECT_NE(proof.detail.find("exact solver"), std::string::npos)
      << proof.detail;
}

TEST(AnalysisExactRace, LoopCarriedRaceCarriesValidatedWitness) {
  const te::Var p = te::make_var("p");
  const te::Tensor a = te::placeholder({9}, "A");
  const te::Expr read = te::access(a, {te::Expr(p) + te::make_int(1)});
  const te::Stmt store =
      te::make_store(a, {te::Expr(p)}, read + te::make_float(1.0));
  const te::Stmt root = parallel_store_loop(p, 8, store);
  const LoopProof& proof =
      proof_for(analysis::analyze_parallel_loops(root), p);
  ASSERT_EQ(proof.verdict, Verdict::kRacy);
  EXPECT_FALSE(proof.proven);
  ASSERT_TRUE(proof.witness.has_value());
  const analysis::Witness& witness = *proof.witness;
  EXPECT_TRUE(witness.validated);
  EXPECT_EQ(witness.tensor, "A");
  ASSERT_FALSE(witness.iteration_a.empty());
  ASSERT_FALSE(witness.iteration_b.empty());
  EXPECT_EQ(witness.iteration_a.front().first, "p");
  EXPECT_EQ(witness.iteration_b.front().first, "p");
  // The two iterations are distinct and alias one element: p_a == p_b + 1.
  const std::int64_t pa = witness.iteration_a.front().second;
  const std::int64_t pb = witness.iteration_b.front().second;
  EXPECT_NE(pa, pb);
  ASSERT_EQ(witness.element.size(), 1u);
  EXPECT_EQ(witness.element[0], pa);
  EXPECT_EQ(witness.element[0], pb + 1);
  EXPECT_NE(witness.describe().find("validated by replay"),
            std::string::npos);
  EXPECT_NE(proof.detail.find("races with"), std::string::npos)
      << proof.detail;
}

TEST(AnalysisExactRace, VerifySplitsVerdictsIntoTwoRules) {
  // Racy program -> parallel-loop-race with the witness attached.
  const te::Var p = te::make_var("p");
  const te::Tensor a = te::placeholder({9}, "A");
  const te::Stmt racy = parallel_store_loop(
      p, 8,
      te::make_store(a, {te::Expr(p)},
                     te::access(a, {te::Expr(p) + te::make_int(1)}) +
                         te::make_float(1.0)));
  std::vector<Violation> violations = analysis::verify_stmt(racy, {a});
  bool saw_race = false;
  for (const Violation& violation : violations) {
    if (violation.rule == "parallel-loop-race") {
      saw_race = true;
      EXPECT_FALSE(violation.witness.empty());
      EXPECT_NE(violation.witness.find("A["), std::string::npos);
    }
    EXPECT_NE(violation.rule, "parallel-loop-unproven");
  }
  EXPECT_TRUE(saw_race);

  // Non-encodable index (i*i) -> the solver cannot decide; the loop is
  // rejected conservatively under parallel-loop-unproven, not -race.
  const te::Var q = te::make_var("q");
  const te::Tensor b = te::placeholder({10}, "B");
  const te::Stmt opaque = parallel_store_loop(
      q, 3,
      te::make_store(b, {te::Expr(q) * te::Expr(q)}, te::make_float(1.0)));
  violations = analysis::verify_stmt(opaque, {b});
  bool saw_unproven = false;
  for (const Violation& violation : violations) {
    if (violation.rule == "parallel-loop-unproven") saw_unproven = true;
    EXPECT_NE(violation.rule, "parallel-loop-race");
  }
  EXPECT_TRUE(saw_unproven) << analysis::format_violations(violations);
}

TEST(AnalysisExactRace, TinySolverBudgetDegradesToUnknown) {
  const te::Var p = te::make_var("p");
  const te::Var j = te::make_var("j");
  const te::Tensor a = te::placeholder({30}, "A");
  const te::Expr index =
      te::make_int(3) * te::Expr(p) + te::make_int(5) * te::Expr(j);
  const te::Stmt root = parallel_store_loop(
      p, 5,
      te::make_for(j, 3, te::ForKind::kSerial,
                   te::make_store(a, {index}, te::make_float(1.0))));
  DependenceOptions options;
  options.solver.max_search_nodes = 1;
  EXPECT_FALSE(options.cacheable());  // non-default limits never cached
  const LoopProof& proof =
      proof_for(analysis::analyze_parallel_loops(root, options), p);
  EXPECT_EQ(proof.verdict, Verdict::kUnknown);
  EXPECT_FALSE(proof.proven);
  EXPECT_NE(proof.detail.find("undecided"), std::string::npos)
      << proof.detail;
}

TEST(AnalysisExactRace, GuardedDisjointHalvesStaySafe) {
  // if (p < 4) write A[p] else write A[p] — both branches touch A[p],
  // but each iteration touches it once; W-W pairs across iterations are
  // disjoint because the index pins p. Sanity: guards flow to the solver.
  const te::Var p = te::make_var("p");
  const te::Tensor a = te::placeholder({8}, "A");
  const te::Stmt then_case =
      te::make_store(a, {te::Expr(p)}, te::make_float(1.0));
  const te::Stmt else_case =
      te::make_store(a, {te::Expr(p)}, te::make_float(2.0));
  const te::Stmt root = parallel_store_loop(
      p, 8,
      te::make_if(te::lt(te::Expr(p), te::make_int(4)), then_case,
                  else_case));
  const LoopProof& proof =
      proof_for(analysis::analyze_parallel_loops(root), p);
  EXPECT_EQ(proof.verdict, Verdict::kSafe) << proof.detail;
}

// ---------------------------------------------------------------------------
// Structural proof cache

TEST(AnalysisCache, SymmetricCoupledSpellingsShareOneProof) {
  ProofCache& cache = ProofCache::global();
  cache.clear();
  cache.set_enabled(true);
  cache.reset_stats();

  // Program 1: A[p, i + j]. Program 2: the same nest spelled A[p, j + i],
  // with the vars created in reverse order so their stable ids differ too.
  const te::Var p1 = te::make_var("p");
  const te::Var i1 = te::make_var("i");
  const te::Var j1 = te::make_var("j");
  const te::Tensor a1 = te::placeholder({4, 5}, "A");
  const te::Stmt prog1 = parallel_store_loop(
      p1, 4,
      te::make_for(
          i1, 3, te::ForKind::kSerial,
          te::make_for(j1, 2, te::ForKind::kSerial,
                       te::make_store(a1,
                                      {te::Expr(p1),
                                       te::Expr(i1) + te::Expr(j1)},
                                      te::make_float(1.0)))));

  const te::Var j2 = te::make_var("j");
  const te::Var i2 = te::make_var("i");
  const te::Var p2 = te::make_var("p");
  const te::Tensor a2 = te::placeholder({4, 5}, "A");
  const te::Stmt prog2 = parallel_store_loop(
      p2, 4,
      te::make_for(
          i2, 3, te::ForKind::kSerial,
          te::make_for(j2, 2, te::ForKind::kSerial,
                       te::make_store(a2,
                                      {te::Expr(p2),
                                       te::Expr(j2) + te::Expr(i2)},
                                      te::make_float(1.0)))));

  const LoopProof& first =
      proof_for(analysis::analyze_parallel_loops(prog1), p1);
  const analysis::AnalysisCacheStats after_first = cache.stats();
  const LoopProof& second =
      proof_for(analysis::analyze_parallel_loops(prog2), p2);
  const analysis::AnalysisCacheStats after_second = cache.stats();

  EXPECT_EQ(first.verdict, Verdict::kSafe);
  EXPECT_EQ(second.verdict, Verdict::kSafe);
  // The second spelling must be served from the cache: one more query,
  // one more hit, zero additional prover runs.
  EXPECT_EQ(after_second.loop_queries, after_first.loop_queries + 1);
  EXPECT_EQ(after_second.loop_hits, after_first.loop_hits + 1);
  EXPECT_EQ(after_second.prover_runs, after_first.prover_runs);
}

TEST(AnalysisCache, AnnotationVariantsShareOneProof) {
  ProofCache& cache = ProofCache::global();
  cache.clear();
  cache.set_enabled(true);
  cache.reset_stats();

  const te::Tensor a = te::placeholder({16}, "A");
  const auto build = [&](te::ForKind kind) {
    const te::Var p = te::make_var("p");
    return std::make_pair(
        te::make_for(p, 16, kind,
                     te::make_store(a, {te::Expr(p)}, te::make_float(1.0))),
        p);
  };
  const auto [par, pvar] = build(te::ForKind::kParallel);
  const auto [vec, vvar] = build(te::ForKind::kVectorized);
  EXPECT_EQ(proof_for(analysis::analyze_parallel_loops(par), pvar).verdict,
            Verdict::kSafe);
  EXPECT_EQ(proof_for(analysis::analyze_parallel_loops(vec), vvar).verdict,
            Verdict::kSafe);
  const analysis::AnalysisCacheStats stats = cache.stats();
  // ForKind is normalized out of the per-loop key: the kVectorized copy
  // hits the proof stored for the kParallel one.
  EXPECT_EQ(stats.prover_runs, 1u);
  EXPECT_EQ(stats.loop_hits, 1u);
}

TEST(AnalysisCache, DisabledCacheCountsQueriesButNeverServes) {
  ProofCache& cache = ProofCache::global();
  cache.clear();
  cache.set_enabled(false);
  cache.reset_stats();

  const te::Tensor a = te::placeholder({8}, "A");
  const te::Var p = te::make_var("p");
  const te::Stmt root = parallel_store_loop(
      p, 8, te::make_store(a, {te::Expr(p)}, te::make_float(1.0)));
  analysis::analyze_parallel_loops(root);
  analysis::analyze_parallel_loops(root);
  const analysis::AnalysisCacheStats stats = cache.stats();
  EXPECT_EQ(stats.loop_queries, 2u);
  EXPECT_EQ(stats.loop_hits, 0u);
  EXPECT_EQ(stats.prover_runs, 2u);
  cache.set_enabled(true);
}

/// One screened configuration of the sweep: the rule ids it was rejected
/// with (empty = accepted), mirroring the measurement pipeline's decision.
std::vector<std::string> screen_decision(
    const std::string& kernel, const std::vector<std::int64_t>& dims,
    const std::vector<std::int64_t>& tiles) {
  std::vector<std::string> rules;
  try {
    const kernels::TeLoweredProgram prog =
        kernels::lower_te_program(kernel, dims, tiles);
    const analysis::ScreenResult result =
        analysis::screen_program(prog.stmt, prog.params);
    for (const Violation& violation : result.violations) {
      rules.push_back(violation.rule);
    }
    // The codegen tier re-analyzes for pragma gating; include it in the
    // sweep so the cache is exercised exactly as tvmbo_tune exercises it.
    (void)analysis::proven_parallel_loops(prog.stmt);
    (void)analysis::proven_vectorized_loops(prog.stmt);
  } catch (const std::exception& e) {
    const std::string what = e.what();
    rules.push_back("construct:" + what.substr(0, what.find(':')));
  }
  std::sort(rules.begin(), rules.end());
  return rules;
}

// The acceptance bar: an identical sweep run cache-off then cache-on must
// make bit-identical accept/reject decisions while executing >= 5x fewer
// full prover runs.
TEST(AnalysisCache, SweepRunsFiveTimesFewerProversWithIdenticalDecisions) {
  const std::string kernel = "gemm";
  const std::vector<std::int64_t> dims = kernels::polybench_dims(
      kernel, kernels::dataset_from_name("mini"));
  const cs::ConfigurationSpace space = kernels::build_space(kernel, dims);

  // A knob-variant-rich sweep: a few base tile vectors, each expanded
  // across the annotation knobs exactly as the tuner's space enumerates
  // them (parallel_axis/threads/vec_axis/unroll; pack off).
  Rng rng(7);
  std::vector<std::vector<std::int64_t>> configs;
  for (int draw = 0; draw < 5; ++draw) {
    const std::vector<std::int64_t> base =
        space.values_int(space.sample(rng));
    for (std::int64_t par = 0; par <= 2; ++par) {
      for (std::int64_t threads : {1, 2}) {
        for (std::int64_t vec : {0, 1}) {
          for (std::int64_t unroll : {0, 2}) {
            std::vector<std::int64_t> tiles = base;
            tiles.insert(tiles.end(), {par, threads, vec, unroll, 0});
            configs.push_back(std::move(tiles));
          }
        }
      }
    }
  }

  ProofCache& cache = ProofCache::global();

  cache.clear();
  cache.set_enabled(false);
  cache.reset_stats();
  std::vector<std::vector<std::string>> decisions_off;
  for (const auto& tiles : configs) {
    decisions_off.push_back(screen_decision(kernel, dims, tiles));
  }
  const analysis::AnalysisCacheStats off = cache.stats();

  cache.clear();
  cache.set_enabled(true);
  cache.reset_stats();
  std::vector<std::vector<std::string>> decisions_on;
  for (const auto& tiles : configs) {
    decisions_on.push_back(screen_decision(kernel, dims, tiles));
  }
  const analysis::AnalysisCacheStats on = cache.stats();

  EXPECT_EQ(decisions_off, decisions_on);
  ASSERT_GT(on.prover_runs, 0u);
  EXPECT_EQ(off.prover_runs, off.loop_queries);  // disabled = no reuse
  EXPECT_GE(off.prover_runs, 5 * on.prover_runs)
      << "cache-off " << off.summary() << " vs cache-on " << on.summary();
  EXPECT_GT(on.verify_hits, 0u) << on.summary();
}

// ---------------------------------------------------------------------------
// Oracle differential fuzz: solver verdict vs exhaustive enumeration

/// Rebuilds `stmt` with the `target`-th For node (preorder) flipped to
/// `kind`; reports the flipped node through `flipped`.
te::Stmt flip_nth_for(const te::Stmt& stmt, std::size_t target,
                      te::ForKind kind, std::size_t& counter,
                      const te::ForNode** flipped) {
  if (!stmt) return stmt;
  switch (stmt->kind()) {
    case te::StmtKind::kFor: {
      const auto* node = static_cast<const te::ForNode*>(stmt.get());
      const bool is_target = counter++ == target;
      te::Stmt body =
          flip_nth_for(node->body, target, kind, counter, flipped);
      te::Stmt out = te::make_for(node->var, node->extent,
                                  is_target ? kind : node->for_kind,
                                  std::move(body));
      if (is_target) {
        *flipped = static_cast<const te::ForNode*>(out.get());
      }
      return out;
    }
    case te::StmtKind::kSeq: {
      const auto* node = static_cast<const te::SeqNode*>(stmt.get());
      std::vector<te::Stmt> stmts;
      for (const te::Stmt& sub : node->stmts) {
        stmts.push_back(flip_nth_for(sub, target, kind, counter, flipped));
      }
      return te::make_seq(std::move(stmts));
    }
    case te::StmtKind::kIfThenElse: {
      const auto* node = static_cast<const te::IfThenElseNode*>(stmt.get());
      te::Stmt then_case =
          flip_nth_for(node->then_case, target, kind, counter, flipped);
      te::Stmt else_case =
          flip_nth_for(node->else_case, target, kind, counter, flipped);
      return te::make_if(node->condition, std::move(then_case),
                         std::move(else_case));
    }
    case te::StmtKind::kRealize: {
      const auto* node = static_cast<const te::RealizeNode*>(stmt.get());
      return te::make_realize(
          node->tensor,
          flip_nth_for(node->body, target, kind, counter, flipped));
    }
    case te::StmtKind::kStore:
      return stmt;
  }
  return stmt;
}

/// Brute-force race oracle: executes the whole program's iteration space
/// (indices only, no data), and for every entry into the flipped loop
/// records which tensor elements each of its iterations touches. A race
/// exists iff some element is touched by two distinct iterations of the
/// flipped loop with at least one write — or a buffer is realized inside
/// the concurrently-executing body.
class RaceOracle {
 public:
  explicit RaceOracle(const te::ForNode* target) : target_(target) {}

  bool run(const te::Stmt& root) {
    walk(root);
    EXPECT_FALSE(eval_failed_) << "oracle could not evaluate an index";
    return race_;
  }

 private:
  struct Cell {
    std::int64_t iter;
    bool mixed = false;
    bool write = false;
  };
  using ElementKey =
      std::pair<const te::TensorNode*, std::vector<std::int64_t>>;

  void touch(const te::TensorNode* tensor,
             const std::vector<te::Expr>& indices, bool is_write) {
    if (iter_ < 0) return;
    std::vector<std::int64_t> element;
    for (const te::Expr& index : indices) {
      std::int64_t value = 0;
      if (!analysis::eval_int_expr(index.get(), env_, &value)) {
        eval_failed_ = true;
        return;
      }
      element.push_back(value);
    }
    auto [it, fresh] = cells_.try_emplace(
        ElementKey{tensor, std::move(element)}, Cell{iter_, false, is_write});
    if (!fresh) {
      if (it->second.iter != iter_) it->second.mixed = true;
      it->second.write |= is_write;
    }
  }

  void scan_expr(const te::ExprNode* expr) {
    if (expr == nullptr) return;
    switch (expr->kind()) {
      case te::ExprKind::kTensorAccess: {
        const auto* node = static_cast<const te::TensorAccessNode*>(expr);
        touch(node->tensor.get(), node->indices, /*is_write=*/false);
        for (const te::Expr& index : node->indices) scan_expr(index.get());
        return;
      }
      case te::ExprKind::kBinary: {
        const auto* node = static_cast<const te::BinaryNode*>(expr);
        scan_expr(node->a.get());
        scan_expr(node->b.get());
        return;
      }
      case te::ExprKind::kUnary:
        scan_expr(static_cast<const te::UnaryNode*>(expr)->operand.get());
        return;
      case te::ExprKind::kCompare: {
        const auto* node = static_cast<const te::CompareNode*>(expr);
        scan_expr(node->a.get());
        scan_expr(node->b.get());
        return;
      }
      case te::ExprKind::kSelect: {
        const auto* node = static_cast<const te::SelectNode*>(expr);
        scan_expr(node->condition.get());
        scan_expr(node->true_value.get());
        scan_expr(node->false_value.get());
        return;
      }
      case te::ExprKind::kReduce:
        scan_expr(static_cast<const te::ReduceNode*>(expr)->source.get());
        return;
      default:
        return;
    }
  }

  void finish_region() {
    for (const auto& [key, cell] : cells_) {
      (void)key;
      if (cell.write && cell.mixed) {
        race_ = true;
        break;
      }
    }
    cells_.clear();
  }

  void walk(const te::Stmt& stmt) {
    if (!stmt || race_ || eval_failed_) return;
    switch (stmt->kind()) {
      case te::StmtKind::kFor: {
        const auto* node = static_cast<const te::ForNode*>(stmt.get());
        if (node == target_) {
          cells_.clear();
          for (std::int64_t v = 0; v < node->extent && !race_; ++v) {
            env_[node->var.get()] = v;
            iter_ = v;
            walk(node->body);
            iter_ = -1;
          }
          env_.erase(node->var.get());
          finish_region();
          return;
        }
        for (std::int64_t v = 0; v < node->extent && !race_; ++v) {
          env_[node->var.get()] = v;
          walk(node->body);
        }
        env_.erase(node->var.get());
        return;
      }
      case te::StmtKind::kStore: {
        const auto* node = static_cast<const te::StoreNode*>(stmt.get());
        touch(node->tensor.get(), node->indices, /*is_write=*/true);
        for (const te::Expr& index : node->indices) {
          scan_expr(index.get());
        }
        scan_expr(node->value.get());
        return;
      }
      case te::StmtKind::kSeq: {
        const auto* node = static_cast<const te::SeqNode*>(stmt.get());
        for (const te::Stmt& sub : node->stmts) walk(sub);
        return;
      }
      case te::StmtKind::kIfThenElse: {
        const auto* node =
            static_cast<const te::IfThenElseNode*>(stmt.get());
        std::int64_t cond = 0;
        if (!analysis::eval_int_expr(node->condition.get(), env_, &cond)) {
          eval_failed_ = true;
          return;
        }
        walk(cond != 0 ? node->then_case : node->else_case);
        return;
      }
      case te::StmtKind::kRealize: {
        const auto* node = static_cast<const te::RealizeNode*>(stmt.get());
        // Realize storage is shared across the iterations of an enclosing
        // concurrent loop (closure-tier contract): automatic race.
        if (iter_ >= 0 && target_->extent >= 2) race_ = true;
        walk(node->body);
        return;
      }
    }
  }

  const te::ForNode* target_;
  analysis::WitnessEnv env_;
  std::map<ElementKey, Cell> cells_;
  std::int64_t iter_ = -1;
  bool race_ = false;
  bool eval_failed_ = false;
};

TEST(AnalysisOracle, SolverAgreesWithExhaustiveEnumeration) {
  const std::vector<std::string> kernel_list = {"3mm",      "gemm", "2mm",
                                                "syrk",     "lu",   "cholesky"};
  constexpr int kDrawsPerKernel = 35;  // 6 * 35 = 210 >= 200 draws
  std::size_t safe_count = 0;
  std::size_t racy_count = 0;
  std::size_t unknown_count = 0;
  std::size_t draws = 0;

  for (const std::string& kernel : kernel_list) {
    const std::vector<std::int64_t> dims = kernels::polybench_dims(
        kernel, kernels::dataset_from_name("mini"));
    const cs::ConfigurationSpace space = kernels::build_space(kernel, dims);
    Rng rng(0xacce55 + std::hash<std::string>{}(kernel));
    for (int draw = 0; draw < kDrawsPerKernel; ++draw) {
      const std::vector<std::int64_t> tiles =
          space.values_int(space.sample(rng));
      const kernels::TeLoweredProgram prog =
          kernels::lower_te_program(kernel, dims, tiles);
      const std::size_t num_loops =
          te::count_stmts(prog.stmt, te::StmtKind::kFor);
      ASSERT_GT(num_loops, 0u);
      const std::size_t target =
          static_cast<std::size_t>(rng.uniform_int(num_loops));
      const te::ForKind kind = rng.bernoulli(0.5)
                                   ? te::ForKind::kParallel
                                   : te::ForKind::kVectorized;
      std::size_t counter = 0;
      const te::ForNode* flipped = nullptr;
      const te::Stmt mutated =
          flip_nth_for(prog.stmt, target, kind, counter, &flipped);
      ASSERT_NE(flipped, nullptr);

      std::ostringstream repro;
      repro << "repro: kernel=" << kernel << " tiles=[";
      for (std::size_t i = 0; i < tiles.size(); ++i) {
        repro << (i ? "," : "") << tiles[i];
      }
      repro << "] flip_loop=" << target << " kind="
            << (kind == te::ForKind::kParallel ? "parallel" : "vectorized");

      const LoopProof& proof =
          proof_for(analysis::analyze_parallel_loops(mutated),
                    flipped->var);
      const bool oracle_race = RaceOracle(flipped).run(mutated);
      ++draws;

      switch (proof.verdict) {
        case Verdict::kSafe:
          ++safe_count;
          // Soundness: a proven-safe loop must have zero enumerated races.
          EXPECT_FALSE(oracle_race)
              << "UNSOUND proven-safe! " << repro.str() << "\n"
              << proof.detail;
          break;
        case Verdict::kRacy:
          ++racy_count;
          // Completeness of the claim: the enumerator must see the race,
          // and any elementwise witness must have replayed successfully.
          EXPECT_TRUE(oracle_race)
              << "false proven-racy! " << repro.str() << "\n"
              << proof.detail;
          if (proof.witness.has_value()) {
            EXPECT_TRUE(proof.witness->validated) << repro.str();
          } else {
            EXPECT_NE(proof.detail.find("realized inside"),
                      std::string::npos)
                << "witness-less racy verdict without a realize rejection: "
                << repro.str() << "\n"
                << proof.detail;
          }
          break;
        case Verdict::kUnknown:
          ++unknown_count;  // conservative; never a soundness issue
          break;
      }
    }
  }

  EXPECT_GE(draws, 200u);
  // The battery must exercise both interesting verdicts heavily, and
  // "unknown" must stay an escape hatch, not the common case.
  EXPECT_GE(safe_count, 20u);
  EXPECT_GE(racy_count, 20u);
  EXPECT_LT(unknown_count, draws / 4)
      << "safe=" << safe_count << " racy=" << racy_count
      << " unknown=" << unknown_count;
}

}  // namespace
}  // namespace tvmbo
