// Closure-compilation backend: must agree exactly with the interpreter on
// every kernel and schedule shape, and be reusable across runs.
#include <gtest/gtest.h>

#include "kernels/reference.h"
#include "kernels/te_kernels.h"
#include "te/compile.h"
#include "te/interp.h"
#include "te/loop_transform.h"

namespace tvmbo::te {
namespace {

using runtime::NDArray;

TEST(Compile, MatmulMatchesInterpreter) {
  kernels::GemmTensors t = kernels::make_gemm(9, 7, 11);
  NDArray a({9, 11}), b({11, 7});
  kernels::init_gemm(a, b);
  Schedule sched = kernels::schedule_gemm(t, 4, 3);
  const Stmt program = lower(sched);

  NDArray via_interp({9, 7});
  Interpreter interp;
  interp.bind(t.A, &a);
  interp.bind(t.B, &b);
  interp.bind(t.C, &via_interp);
  interp.run(program);

  NDArray via_compile({9, 7});
  const CompiledProgram compiled = CompiledProgram::compile(
      program, {{t.A, &a}, {t.B, &b}, {t.C, &via_compile}});
  compiled.run();
  EXPECT_TRUE(via_compile.allclose(via_interp, 0.0));  // bit-identical
}

TEST(Compile, ThreeMmWithRealizeMatchesReference) {
  const std::int64_t n = 6, l = 7, m = 8, o = 5, p = 4;
  kernels::ThreeMmTensors t = kernels::make_3mm(n, l, m, o, p);
  NDArray a({n, l}), b({l, m}), c({m, o}), d({o, p});
  kernels::init_3mm(a, b, c, d);
  NDArray e({n, m}), f({m, p}), expected({n, p});
  kernels::ref_3mm(a, b, c, d, e, f, expected);

  const std::int64_t tiles[6] = {3, 5, 7, 3, 2, 3};
  Schedule sched = kernels::schedule_3mm(t, tiles);
  const Stmt program = lower(sched);
  NDArray g({n, p});
  const CompiledProgram compiled = CompiledProgram::compile(
      program, {{t.A, &a}, {t.B, &b}, {t.C, &c}, {t.D, &d}, {t.G, &g}});
  compiled.run();
  EXPECT_TRUE(g.allclose(expected, 1e-10));
}

TEST(Compile, CompiledProgramIsReusable) {
  kernels::GemmTensors t = kernels::make_gemm(6, 6, 6);
  NDArray a({6, 6}), b({6, 6}), c({6, 6});
  kernels::init_gemm(a, b);
  Schedule sched = kernels::schedule_gemm(t, 2, 3);
  const CompiledProgram compiled = CompiledProgram::compile(
      lower(sched), {{t.A, &a}, {t.B, &b}, {t.C, &c}});
  compiled.run();
  const NDArray first = c;
  // Mutate an input; the second run must see the new values (the program
  // binds buffers, not snapshots).
  a.fill(1.0);
  compiled.run();
  EXPECT_FALSE(c.allclose(first, 1e-12));
  NDArray expected({6, 6});
  kernels::ref_matmul(a, b, expected);
  EXPECT_TRUE(c.allclose(expected, 1e-12));
}

TEST(Compile, LuProgramWithGuardsMatchesReference) {
  const std::int64_t n = 12;
  Tensor a = placeholder({n, n}, "A");
  kernels::FactorizationProgram lu = kernels::build_lu(a, n);
  // Tile the update at the IR level first — exercises guards + splits.
  Var io, ii, jo, ji;
  Stmt tiled = split_loop(lu.stmt, lu.update_i, 5, &io, &ii);
  tiled = split_loop(tiled, lu.update_j, 3, &jo, &ji);
  tiled = interchange_loops(tiled, ii, jo);

  NDArray work({n, n});
  kernels::init_lu(work);
  NDArray expected = work;
  kernels::ref_lu(expected);

  const CompiledProgram compiled =
      CompiledProgram::compile(tiled, {{a, &work}});
  compiled.run();
  EXPECT_TRUE(work.allclose(expected, 1e-10));
}

TEST(Compile, CholeskyUsesSqrtClosure) {
  const std::int64_t n = 10;
  Tensor a = placeholder({n, n}, "A");
  const Stmt program = kernels::build_cholesky_program(a, n);
  NDArray work({n, n});
  kernels::init_spd(work);
  NDArray expected = work;
  kernels::ref_cholesky(expected);
  const CompiledProgram compiled =
      CompiledProgram::compile(program, {{a, &work}});
  compiled.run();
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j <= i; ++j)
      EXPECT_NEAR(work.at2(i, j), expected.at2(i, j), 1e-10);
}

TEST(Compile, SyrkSelectPipelineMatchesReference) {
  const std::int64_t n = 8, m = 6;
  kernels::SyrkTensors t = kernels::make_syrk(n, m, 2.0, 3.0);
  NDArray a({n, m}), cin({n, n});
  kernels::init_syrk(a, cin);
  NDArray expected = cin;
  kernels::ref_syrk(a, expected, 2.0, 3.0);
  Schedule sched = kernels::schedule_syrk(t, 4, 2);
  NDArray out({n, n});
  const CompiledProgram compiled = CompiledProgram::compile(
      lower(sched), {{t.A, &a}, {t.Cin, &cin}, {t.Cout, &out}});
  compiled.run();
  EXPECT_TRUE(out.allclose(expected, 1e-10));
}

TEST(Compile, UnboundTensorThrows) {
  kernels::GemmTensors t = kernels::make_gemm(4, 4, 4);
  Schedule sched = kernels::schedule_gemm(t, 2, 2);
  NDArray a({4, 4}), c({4, 4});
  EXPECT_THROW(
      CompiledProgram::compile(lower(sched), {{t.A, &a}, {t.C, &c}}),
      CheckError);
}

TEST(Compile, Float32BufferRejected) {
  Tensor a = placeholder({4}, "A");
  Var i = make_var("i");
  Stmt program = make_for(i, 4, ForKind::kSerial,
                          make_store(a, {i}, make_float(1.0)));
  NDArray f32({4}, runtime::DType::kFloat32);
  EXPECT_THROW(CompiledProgram::compile(program, {{a, &f32}}), CheckError);
}

TEST(Compile, RegisterCountEqualsLoopDepth) {
  kernels::GemmTensors t = kernels::make_gemm(8, 8, 8);
  Schedule sched = kernels::schedule_gemm(t, 4, 2);
  NDArray a({8, 8}), b({8, 8}), c({8, 8});
  const CompiledProgram compiled = CompiledProgram::compile(
      lower(sched), {{t.A, &a}, {t.B, &b}, {t.C, &c}});
  EXPECT_EQ(compiled.num_registers(), 5u);  // yo,xo,k,yi,xi nest
}

class CompileVsInterpSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CompileVsInterpSweep, BitIdenticalAcrossTilePairs) {
  const auto [ty, tx] = GetParam();
  kernels::GemmTensors t = kernels::make_gemm(12, 10, 7);
  NDArray a({12, 7}), b({7, 10});
  kernels::init_gemm(a, b);
  Schedule sched = kernels::schedule_gemm(t, ty, tx);
  const Stmt program = lower(sched);

  NDArray via_interp({12, 10});
  Interpreter interp;
  interp.bind(t.A, &a);
  interp.bind(t.B, &b);
  interp.bind(t.C, &via_interp);
  interp.run(program);

  NDArray via_compile({12, 10});
  CompiledProgram::compile(program,
                           {{t.A, &a}, {t.B, &b}, {t.C, &via_compile}})
      .run();
  EXPECT_TRUE(via_compile.allclose(via_interp, 0.0))
      << "ty=" << ty << " tx=" << tx;
}

INSTANTIATE_TEST_SUITE_P(
    Tiles, CompileVsInterpSweep,
    ::testing::Values(std::pair<int, int>{1, 1}, std::pair<int, int>{3, 4},
                      std::pair<int, int>{5, 3},
                      std::pair<int, int>{12, 10},
                      std::pair<int, int>{7, 7}));

}  // namespace
}  // namespace tvmbo::te
