#include "kernels/polybench.h"

#include <gtest/gtest.h>

#include "common/logging.h"
#include "runtime/cpu_device.h"

namespace tvmbo::kernels {
namespace {

TEST(Polybench, DatasetNamesRoundTrip) {
  for (Dataset d : {Dataset::kMini, Dataset::kSmall, Dataset::kMedium,
                    Dataset::kLarge, Dataset::kExtraLarge}) {
    EXPECT_EQ(dataset_from_name(dataset_name(d)), d);
  }
  EXPECT_THROW(dataset_from_name("huge"), CheckError);
}

TEST(Polybench, PaperDatasetDims) {
  EXPECT_EQ(polybench_dims("3mm", Dataset::kLarge),
            (std::vector<std::int64_t>{800, 900, 1000, 1100, 1200}));
  EXPECT_EQ(polybench_dims("3mm", Dataset::kExtraLarge),
            (std::vector<std::int64_t>{1600, 1800, 2000, 2200, 2400}));
  EXPECT_EQ(polybench_dims("lu", Dataset::kLarge),
            (std::vector<std::int64_t>{2000}));
  EXPECT_EQ(polybench_dims("cholesky", Dataset::kExtraLarge),
            (std::vector<std::int64_t>{4000}));
}

TEST(Polybench, Table1SpaceSizes) {
  // The paper's Table 1, exactly.
  struct Row {
    const char* kernel;
    Dataset dataset;
    std::uint64_t expected;
  };
  for (const Row& row :
       {Row{"3mm", Dataset::kLarge, 74649600ull},
        Row{"3mm", Dataset::kExtraLarge, 228614400ull},
        Row{"cholesky", Dataset::kLarge, 400ull},
        Row{"cholesky", Dataset::kExtraLarge, 576ull},
        Row{"lu", Dataset::kLarge, 400ull},
        Row{"lu", Dataset::kExtraLarge, 576ull}}) {
    const auto dims = polybench_dims(row.kernel, row.dataset);
    const auto space = build_space(row.kernel, dims);
    EXPECT_EQ(space.cardinality(), row.expected)
        << row.kernel << "/" << dataset_name(row.dataset);
  }
}

TEST(Polybench, PaperP0SequenceFor3mmXl) {
  // §4 lists P0's sequence for 3mm-extralarge: the divisors of 2000.
  const auto space =
      build_space("3mm", polybench_dims("3mm", Dataset::kExtraLarge));
  const auto& p0 =
      static_cast<const cs::OrdinalHyperparameter&>(space.param("P0"));
  EXPECT_EQ(p0.sequence(),
            (std::vector<double>{1, 2, 4, 5, 8, 10, 16, 20, 25, 40, 50, 80,
                                 100, 125, 200, 250, 400, 500, 1000, 2000}));
  // And P1 = divisors(1600), 21 values ending in 1600.
  const auto& p1 =
      static_cast<const cs::OrdinalHyperparameter&>(space.param("P1"));
  EXPECT_EQ(p1.sequence().size(), 21u);
  EXPECT_DOUBLE_EQ(p1.sequence().back(), 1600.0);
}

TEST(Polybench, FlopsFormulas) {
  EXPECT_DOUBLE_EQ(kernel_flops("lu", {100}), 2.0 / 3.0 * 1e6);
  EXPECT_DOUBLE_EQ(kernel_flops("cholesky", {100}), 1.0 / 3.0 * 1e6);
  EXPECT_DOUBLE_EQ(kernel_flops("gemm", {10, 20, 30}), 2.0 * 6000);
  // 3mm: 2*(N*M*L + M*P*O + N*P*M)
  EXPECT_DOUBLE_EQ(kernel_flops("3mm", {2, 3, 4, 5, 6}),
                   2.0 * (2 * 4 * 3 + 4 * 6 * 5 + 2 * 6 * 4));
}

TEST(Polybench, WorkloadDescriptor) {
  const auto w = make_workload("lu", Dataset::kLarge);
  EXPECT_EQ(w.kernel, "lu");
  EXPECT_EQ(w.size_name, "large");
  EXPECT_EQ(w.dims, (std::vector<std::int64_t>{2000}));
  EXPECT_GT(w.flops, 5e9);
}

TEST(Polybench, UnknownKernelThrows) {
  EXPECT_THROW(polybench_dims("fft", Dataset::kLarge), CheckError);
  EXPECT_THROW(kernel_flops("fft", {1}), CheckError);
}

TEST(Polybench, TaskKnobsMatchSpace) {
  const autotvm::Task task = make_task("lu", Dataset::kLarge);
  EXPECT_EQ(task.name, "lu_large");
  EXPECT_EQ(task.config.space().cardinality(), 400u);
  EXPECT_EQ(task.config.num_knobs(), 2u);
}

TEST(Polybench, NonExecutableTaskStillMeasurable) {
  const autotvm::Task task = make_task("lu", Dataset::kLarge);
  cs::Configuration config =
      task.config.space().default_configuration();
  const runtime::MeasureInput input = task.measure_input(config);
  EXPECT_EQ(input.workload.kernel, "lu");
  EXPECT_EQ(input.tiles.size(), 2u);
  EXPECT_FALSE(static_cast<bool>(input.run));
}

TEST(Polybench, ExecutableTaskRunsOnCpu) {
  // Mini dataset so the real execution stays fast.
  autotvm::Task task =
      make_task("lu", "mini", polybench_dims("lu", Dataset::kMini),
                /*executable=*/true);
  cs::Configuration config =
      task.config.space().default_configuration();
  config.set_index(0, 2);
  config.set_index(1, 1);
  const runtime::MeasureInput input = task.measure_input(config);
  ASSERT_TRUE(static_cast<bool>(input.run));
  runtime::CpuDevice device;
  runtime::MeasureOption option;
  option.repeat = 1;
  const auto result = device.measure(input, option);
  EXPECT_TRUE(result.valid);
  EXPECT_GT(result.runtime_s, 0.0);
}

TEST(Polybench, Executable3mmTaskRunsOnCpu) {
  autotvm::Task task =
      make_task("3mm", "mini", polybench_dims("3mm", Dataset::kMini),
                /*executable=*/true);
  cs::Configuration config =
      task.config.space().default_configuration();
  const runtime::MeasureInput input = task.measure_input(config);
  ASSERT_TRUE(static_cast<bool>(input.run));
  runtime::CpuDevice device;
  runtime::MeasureOption option;
  option.repeat = 1;
  EXPECT_TRUE(device.measure(input, option).valid);
}

TEST(Polybench, PaperExperimentIndexCoversAllFigures) {
  const auto experiments = paper_experiments();
  EXPECT_EQ(experiments.size(), 6u);
  int figures = 0;
  for (const auto& e : experiments) {
    if (e.figure_process[0] != '\0') figures += 2;  // process + minimum
  }
  EXPECT_EQ(figures, 10);  // Figs 4-13
}

}  // namespace
}  // namespace tvmbo::kernels
