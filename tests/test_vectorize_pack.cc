// The vectorization + array-packing codegen tier, interpreter/closure
// side (no JIT execution here — these suites also run under TSan, where
// dlopen'd kernels are out of scope; the jit half of the battery lives in
// test_backend_differential.cc and test_codegen.cc):
//
//  * relaxed Stage::vectorize targets any leaf, gated by the race prover
//    at lowering rather than a syntactic innermost-only rule;
//  * cache_write packing materializes a proven-in-window scratch whose
//    Realize placement is machine-checked — hoisted outside concurrent
//    loops, per-iteration otherwise;
//  * the unroll straight-lining limit is one shared constant between the
//    interpreter pass pipeline and the emitted-C path;
//  * the widened config space keeps its documented shape, collapsing
//    disabled knobs to singletons so tile vectors stay uniform.
#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "analysis/config_screen.h"
#include "analysis/dependence.h"
#include "codegen/c_emitter.h"
#include "common/rng.h"
#include "kernels/polybench.h"
#include "kernels/te_kernels.h"
#include "kernels/te_programs.h"
#include "te/lower.h"
#include "te/printer.h"
#include "te/transform.h"

namespace tvmbo {
namespace {

using kernels::Dataset;
using runtime::ExecBackend;

std::vector<std::string> te_kernels() {
  return {"3mm", "gemm", "2mm", "syrk", "lu", "cholesky"};
}

std::vector<std::int64_t> default_base_tiles(const std::string& kernel,
                                             const std::vector<std::int64_t>&
                                                 dims) {
  const cs::ConfigurationSpace space = kernels::build_space(kernel, dims);
  return space.values_int(space.default_configuration());
}

void expect_bits_equal(const runtime::NDArray& a, const runtime::NDArray& b,
                       const std::string& label) {
  ASSERT_EQ(a.shape(), b.shape()) << label;
  std::span<const double> av = a.f64(), bv = b.f64();
  for (std::size_t i = 0; i < av.size(); ++i) {
    ASSERT_EQ(av[i], bv[i]) << label << " (flat index " << i << ")";
  }
}

// --- relaxed vectorize -------------------------------------------------------

TEST(VectorizePack, SecondInnermostVectorizeLowersWithProof) {
  // vec_axis=2 annotates yi — not the innermost loop. The old syntactic
  // innermost-only rule would have rejected this; the real gate is the
  // dependence prover, which certifies the loop and hands the C emitter
  // its pragma license.
  kernels::GemmTensors t = kernels::make_gemm(8, 8, 6);
  const te::Stmt stmt = te::lower(kernels::schedule_gemm(
      t, 2, 4, /*par_axis=*/0, /*vec_axis=*/2));
  EXPECT_FALSE(analysis::proven_vectorized_loops(stmt).empty());
  EXPECT_NE(te::to_string(stmt).find("vectorize "), std::string::npos);
  const analysis::ScreenResult screened =
      analysis::screen_program(stmt, {t.A, t.B, t.C});
  EXPECT_TRUE(screened.ok()) << screened.first_error();
}

// --- pack placement ----------------------------------------------------------

TEST(VectorizePack, PackRealizePlacementFollowsAnnotation) {
  kernels::GemmTensors t = kernels::make_gemm(8, 8, 6);

  // Serial outer loop: a fresh window per yo iteration — the Realize
  // nests inside the loop.
  const std::string serial = te::to_string(te::lower(kernels::schedule_gemm(
      t, 2, 4, /*par_axis=*/0, /*vec_axis=*/0, /*unroll=*/0, /*pack=*/true)));
  const std::size_t serial_for = serial.find("for ");
  const std::size_t serial_realize = serial.find("realize C_A_pack");
  ASSERT_NE(serial_for, std::string::npos) << serial;
  ASSERT_NE(serial_realize, std::string::npos) << serial;
  EXPECT_LT(serial_for, serial_realize)
      << "serial pack must realize per iteration:\n" << serial;

  // Parallel outer loop: a Realize inside a kParallel loop is racy (the
  // closure tier shares one buffer across iterations), so the copy is
  // hoisted outside — and the analysis screen machine-checks exactly
  // that placement.
  kernels::GemmTensors t2 = kernels::make_gemm(8, 8, 6);
  const te::Stmt parallel_stmt = te::lower(kernels::schedule_gemm(
      t2, 2, 4, /*par_axis=*/1, /*vec_axis=*/0, /*unroll=*/0,
      /*pack=*/true));
  const std::string parallel = te::to_string(parallel_stmt);
  const std::size_t par_loop = parallel.find("parallel ");
  const std::size_t par_realize = parallel.find("realize C_A_pack");
  ASSERT_NE(par_loop, std::string::npos) << parallel;
  ASSERT_NE(par_realize, std::string::npos) << parallel;
  EXPECT_LT(par_realize, par_loop)
      << "parallel pack must hoist the realize:\n" << parallel;
  EXPECT_FALSE(analysis::proven_parallel_loops(parallel_stmt).empty());
  const analysis::ScreenResult screened =
      analysis::screen_program(parallel_stmt, {t2.A, t2.B, t2.C});
  EXPECT_TRUE(screened.ok()) << screened.first_error();
}

TEST(VectorizePack, LuCholeskyPackThePivotColumn) {
  // The loop-IR-built factorizations pack the pivot column a[*, k] into a
  // contiguous scratch hoisted outside the row loop, snapshotting it
  // after the scale loop so redirected reads observe the scaled values.
  for (const std::string kernel : {"lu", "cholesky"}) {
    const std::vector<std::int64_t> dims =
        kernels::polybench_dims(kernel, Dataset::kMini);
    const auto data = kernels::make_te_kernel_data(kernel, dims);
    std::vector<std::int64_t> tiles = default_base_tiles(kernel, dims);
    tiles.insert(tiles.end(), {0, 1, 0, 0, /*pack=*/1});
    kernels::TeProgramInstance instance(data, tiles);
    EXPECT_NE(te::to_string(instance.stmt()).find("realize a_col_pack"),
              std::string::npos)
        << kernel;
    std::vector<te::Tensor> params;
    for (const auto& [tensor, array] : instance.bindings()) {
      (void)array;
      params.push_back(tensor);
    }
    const analysis::ScreenResult screened =
        analysis::screen_program(instance.stmt(), params);
    EXPECT_TRUE(screened.ok()) << kernel << ": " << screened.first_error();
  }
}

// --- unroll-limit parity -----------------------------------------------------

TEST(VectorizePack, UnrollLimitIsSharedBetweenTiers) {
  // One constant decides what gets straight-lined everywhere: extent
  // kUnrollMaxExtent expands on the interpreter pipeline's default call
  // (the same default the jit pre-pass uses), extent kUnrollMaxExtent+1
  // survives — and the emitted-C path agrees on both sides of the
  // boundary.
  const te::Tensor out = te::placeholder({te::kUnrollMaxExtent + 1}, "out");
  const te::Var i = te::make_var("i");
  const te::Stmt at_limit = te::make_for(
      i, te::kUnrollMaxExtent, te::ForKind::kUnrolled,
      te::make_store(out, {i}, te::make_float(1.0)));
  const te::Var j = te::make_var("j");
  const te::Stmt over_limit = te::make_for(
      j, te::kUnrollMaxExtent + 1, te::ForKind::kUnrolled,
      te::make_store(out, {j}, te::make_float(1.0)));

  const te::Stmt expanded = te::unroll_loops(at_limit);
  EXPECT_FALSE(te::has_loop_kind(expanded, te::ForKind::kUnrolled));
  const te::Stmt kept = te::unroll_loops(over_limit);
  EXPECT_TRUE(te::has_loop_kind(kept, te::ForKind::kUnrolled));
  // The default argument IS the shared constant.
  EXPECT_EQ(te::to_string(te::unroll_loops(at_limit, te::kUnrollMaxExtent)),
            te::to_string(expanded));

  // Emitted-C parity: the expanded side emits straight-line stores (no
  // loop, no pragma); the kept side emits the loop and — only with a
  // factor — the unroll hint.
  codegen::EmitOptions options;
  options.unroll = true;
  options.unroll_factor = 4;
  const std::string expanded_c =
      codegen::emit_c_source(expanded, {out}, "tvmbo_kernel", options);
  EXPECT_EQ(expanded_c.find("for (int64_t"), std::string::npos);
  EXPECT_EQ(expanded_c.find("#pragma"), std::string::npos);
  const std::string kept_c =
      codegen::emit_c_source(kept, {out}, "tvmbo_kernel", options);
  EXPECT_NE(kept_c.find("for (int64_t"), std::string::npos);
  EXPECT_NE(kept_c.find("#pragma GCC unroll 4"), std::string::npos);
}

// --- config-space shape ------------------------------------------------------

TEST(VectorizePack, WidenedSpaceShapeAndSingletonCollapse) {
  const std::vector<std::int64_t> dims =
      kernels::polybench_dims("gemm", Dataset::kMini);
  const cs::ConfigurationSpace base = kernels::build_space("gemm", dims);

  // Fully widened: +5 params, documented cardinalities 3 (P_vec),
  // 4 (P_unroll in {0,2,4,8}), 2 (P_pack).
  kernels::ScheduleKnobs wide;
  wide.enabled = true;
  wide.max_threads = 4;
  wide.vectorize = wide.unroll = wide.pack = true;
  const cs::ConfigurationSpace widened =
      kernels::build_space("gemm", dims, wide);
  ASSERT_EQ(widened.num_params(), base.num_params() + 5u);
  EXPECT_EQ(widened.param("P_vec").cardinality(), 3u);
  EXPECT_EQ(widened.param("P_unroll").cardinality(), 4u);
  EXPECT_EQ(widened.param("P_pack").cardinality(), 2u);

  // Partial widening: only vectorize on, parallel tier off. The tile
  // vector keeps the uniform base+5 shape, with every disabled knob
  // collapsed to a singleton so it contributes factor 1 to the space.
  kernels::ScheduleKnobs vec_only;
  vec_only.vectorize = true;
  const cs::ConfigurationSpace partial =
      kernels::build_space("gemm", dims, vec_only);
  ASSERT_EQ(partial.num_params(), base.num_params() + 5u);
  EXPECT_EQ(partial.cardinality(), base.cardinality() * 3u);
  EXPECT_EQ(partial.param("P_unroll").cardinality(), 1u);
  EXPECT_EQ(partial.param("P_pack").cardinality(), 1u);
  Rng rng(7);
  for (int draw = 0; draw < 8; ++draw) {
    const std::vector<std::int64_t> values =
        partial.values_int(partial.sample(rng));
    ASSERT_EQ(values.size(), base.num_params() + 5u);
    EXPECT_EQ(values[base.num_params()], 0);      // parallel_axis pinned
    EXPECT_EQ(values[base.num_params() + 1], 1);  // threads pinned
    EXPECT_EQ(values[base.num_params() + 3], 0);  // unroll pinned
    EXPECT_EQ(values[base.num_params() + 4], 0);  // pack pinned
  }
}

// --- closure-tier bit-identity (runs under TSan) -----------------------------

TEST(VectorizePackClosure, PackedClosureMatchesInterpOracle) {
  for (const std::string& kernel : te_kernels()) {
    const std::vector<std::int64_t> dims =
        kernels::polybench_dims(kernel, Dataset::kMini);
    const auto data = kernels::make_te_kernel_data(kernel, dims);
    const std::vector<std::int64_t> base = default_base_tiles(kernel, dims);
    const runtime::NDArray oracle =
        kernels::run_te_backend(data, base, ExecBackend::kInterp);

    std::vector<std::int64_t> packed = base;
    packed.insert(packed.end(), {0, 1, 0, 0, /*pack=*/1});
    expect_bits_equal(oracle,
                      kernels::run_te_backend(data, packed,
                                              ExecBackend::kClosure),
                      kernel + " pack");

    std::vector<std::int64_t> combo = base;
    combo.insert(combo.end(), {0, 1, /*vec=*/1, /*unroll=*/2, /*pack=*/1});
    expect_bits_equal(oracle,
                      kernels::run_te_backend(data, combo,
                                              ExecBackend::kClosure),
                      kernel + " vec+unroll+pack");
  }
}

TEST(VectorizePackClosure, ParallelPackedClosureMatchesInterpOracle) {
  // The hoisted pack window is shared read-only across worker threads;
  // under TSan this doubles as a data-race audit of the placement proof.
  for (const std::string& kernel : te_kernels()) {
    const std::vector<std::int64_t> dims =
        kernels::polybench_dims(kernel, Dataset::kMini);
    const auto data = kernels::make_te_kernel_data(kernel, dims);
    const std::vector<std::int64_t> base = default_base_tiles(kernel, dims);
    const runtime::NDArray oracle =
        kernels::run_te_backend(data, base, ExecBackend::kInterp);
    std::vector<std::int64_t> combo = base;
    combo.insert(combo.end(),
                 {/*axis=*/1, /*threads=*/2, /*vec=*/1, /*unroll=*/2,
                  /*pack=*/1});
    expect_bits_equal(oracle,
                      kernels::run_te_backend(data, combo,
                                              ExecBackend::kClosure),
                      kernel + " parallel+vec+unroll+pack");
  }
}

}  // namespace
}  // namespace tvmbo
