#include "autotvm/autotvm.h"

#include <gtest/gtest.h>

#include "common/logging.h"

namespace tvmbo::autotvm {
namespace {

ConfigEntity paper_knobs() {
  ConfigEntity cfg;
  cfg.define_knob("tile_y", {1, 2, 4, 5, 8, 10, 16, 20, 25, 40, 50, 80,
                             100, 125, 200, 250, 400, 500, 1000, 2000});
  cfg.define_knob("tile_x", {1, 2, 4, 5, 8, 10, 16, 20, 25, 40, 50, 80,
                             100, 125, 200, 250, 400, 500, 1000, 2000});
  return cfg;
}

TEST(ConfigEntity, KnobSpaceMatchesDefinitions) {
  const ConfigEntity cfg = paper_knobs();
  EXPECT_EQ(cfg.num_knobs(), 2u);
  EXPECT_EQ(cfg.space().cardinality(), 400u);
}

TEST(ConfigEntity, ValReadsBoundConfiguration) {
  ConfigEntity cfg = paper_knobs();
  cs::Configuration config = cfg.space().default_configuration();
  config.set_index(0, 16);  // 400
  config.set_index(1, 10);   // 50
  cfg.bind(config);
  EXPECT_EQ(cfg.val("tile_y"), 400);
  EXPECT_EQ(cfg.val("tile_x"), 50);
  EXPECT_EQ(cfg.values(), (std::vector<std::int64_t>{400, 50}));
}

TEST(ConfigEntity, ValBeforeBindThrows) {
  ConfigEntity cfg = paper_knobs();
  EXPECT_THROW(cfg.val("tile_y"), CheckError);
}

TEST(ConfigEntity, DefineAfterBindThrows) {
  ConfigEntity cfg = paper_knobs();
  cfg.bind(cfg.space().default_configuration());
  EXPECT_THROW(cfg.define_knob("late", {1, 2}), CheckError);
}

TEST(ConfigEntity, EmptyCandidatesThrow) {
  ConfigEntity cfg;
  EXPECT_THROW(cfg.define_knob("empty", {}), CheckError);
}

TEST(Task, MeasureInputUsesInstantiateWhenPresent) {
  Task task;
  task.name = "demo";
  task.workload.kernel = "lu";
  task.workload.size_name = "mini";
  task.workload.dims = {8};
  task.config.define_knob("tile_y", {1, 2, 4, 8});
  task.config.define_knob("tile_x", {1, 2, 4, 8});
  std::vector<std::int64_t> captured;
  task.instantiate = [&](const std::vector<std::int64_t>& knobs) {
    captured = knobs;
    runtime::MeasureInput input;
    input.workload = task.workload;
    input.tiles = knobs;
    input.run = [] {};
    return input;
  };
  cs::Configuration config = task.config.space().default_configuration();
  config.set_index(0, 3);
  config.set_index(1, 1);
  const runtime::MeasureInput input = task.measure_input(config);
  EXPECT_EQ(captured, (std::vector<std::int64_t>{8, 2}));
  EXPECT_EQ(input.tiles, captured);
}

TEST(TunerFactory, CreatesAllFourTuners) {
  const ConfigEntity cfg = paper_knobs();
  for (TunerType type : {TunerType::kRandom, TunerType::kGridSearch,
                         TunerType::kGa, TunerType::kXgb}) {
    auto tuner = create_tuner(type, &cfg.space(), 1);
    ASSERT_NE(tuner, nullptr);
    EXPECT_EQ(tuner->name(), tuner_type_name(type));
    EXPECT_TRUE(tuner->has_next());
    EXPECT_FALSE(tuner->next_batch(4).empty());
  }
}

TEST(TunerFactory, XgbQuirkFlagPropagates) {
  const ConfigEntity cfg = paper_knobs();
  TunerFactoryOptions options;
  options.xgb_paper_eval_cap = 56;
  auto tuner = create_tuner(TunerType::kXgb, &cfg.space(), 1, options);
  std::size_t total = 0;
  while (tuner->has_next()) {
    const auto batch = tuner->next_batch(10);
    if (batch.empty()) break;
    std::vector<tuners::Trial> trials;
    for (const auto& config : batch) trials.push_back({config, 1.0, true});
    tuner->update(trials);
    total += batch.size();
  }
  EXPECT_EQ(total, 56u);
}

}  // namespace
}  // namespace tvmbo::autotvm
