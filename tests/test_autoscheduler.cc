#include <gtest/gtest.h>

#include <set>

#include "autoscheduler/evolutionary.h"
#include "autoscheduler/sketch.h"
#include "configspace/divisors.h"
#include "kernels/polybench.h"
#include "kernels/reference.h"
#include "kernels/te_kernels.h"
#include "te/interp.h"
#include "tuners/random_tuner.h"

namespace tvmbo::autoscheduler {
namespace {

TEST(Sketch, GemmSpaceDerivedFromExtents) {
  const auto gemm = kernels::make_gemm(24, 36, 16);
  SketchGenerator sketch({gemm.C});
  ASSERT_EQ(sketch.stages().size(), 1u);
  // y over divisors(24) = 8 values, x over divisors(36) = 9 values.
  EXPECT_EQ(sketch.space().cardinality(), 72u);
  EXPECT_EQ(sketch.space().param(0).name(), "S0_y");
  EXPECT_EQ(sketch.space().param(1).name(), "S0_x");
}

TEST(Sketch, ThreeMmGeneratesSixParameters) {
  const auto t = kernels::make_3mm(8, 9, 10, 11, 12);
  SketchGenerator sketch({t.G});
  EXPECT_EQ(sketch.stages().size(), 3u);
  EXPECT_EQ(sketch.space().num_params(), 6u);
  // Stage E is N x M = 8 x 10: y factors from divisors(8), x from
  // divisors(10) — analysis of the computation, not a hand-written list.
  EXPECT_EQ(sketch.space().param("S0_y").cardinality(),
            cs::divisor_count(8));
  EXPECT_EQ(sketch.space().param("S0_x").cardinality(),
            cs::divisor_count(10));
}

TEST(Sketch, AutoSpaceMatchesPaperCardinalityButNotAssignment) {
  // The paper's handmade 3mm space assigns each stage's split the divisor
  // set of a *different* matrix extent; the analyzed space uses each
  // stage's own extents. The per-parameter domains therefore differ, but
  // the total cardinality coincides (the divisor-count multiset is just
  // permuted: 20*21*36*20*36*21 = 21*20*20*36*21*36).
  const auto dims = kernels::polybench_dims(
      "3mm", kernels::Dataset::kExtraLarge);
  const auto t = kernels::make_3mm(dims[0], dims[1], dims[2], dims[3],
                                   dims[4]);
  SketchGenerator sketch({t.G});
  const auto handmade = kernels::build_space("3mm", dims);
  EXPECT_EQ(handmade.cardinality(), 228614400u);
  EXPECT_EQ(sketch.space().cardinality(),
            cs::divisor_count(1600) * cs::divisor_count(2000) *
                cs::divisor_count(2000) * cs::divisor_count(2400) *
                cs::divisor_count(1600) * cs::divisor_count(2400));
}

TEST(Sketch, AppliedScheduleComputesCorrectValues) {
  const auto t = kernels::make_3mm(6, 7, 8, 5, 4);
  SketchGenerator sketch({t.G});
  runtime::NDArray a({6, 7}), b({7, 8}), c({8, 5}), d({5, 4});
  kernels::init_3mm(a, b, c, d);
  runtime::NDArray e({6, 8}), f({8, 4}), expected({6, 4});
  kernels::ref_3mm(a, b, c, d, e, f, expected);

  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const cs::Configuration config = sketch.space().sample(rng);
    te::Schedule sched = sketch.apply(config);
    runtime::NDArray g({6, 4});
    te::run_schedule(sched,
                     {{t.A, &a}, {t.B, &b}, {t.C, &c}, {t.D, &d},
                      {t.G, &g}});
    EXPECT_TRUE(g.allclose(expected, 1e-10))
        << sketch.space().to_string(config);
  }
}

TEST(Sketch, TilesInStageOrder) {
  const auto gemm = kernels::make_gemm(8, 8, 8);
  SketchGenerator sketch({gemm.C});
  cs::Configuration config = sketch.space().default_configuration();
  config.set_index(0, 2);  // divisors(8)[2] == 4
  config.set_index(1, 1);  // divisors(8)[1] == 2
  EXPECT_EQ(sketch.tiles(config), (std::vector<std::int64_t>{4, 2}));
}

TEST(Sketch, RejectsNonReductionDag) {
  auto a = te::placeholder({4, 4}, "A");
  auto b = te::compute({4, 4}, "B", [&](const std::vector<te::Var>& i) {
    return te::access(a, {i[0], i[1]}) + te::make_float(1.0);
  });
  EXPECT_THROW(SketchGenerator({b}), CheckError);
}

// --- evolutionary search ----------------------------------------------------

cs::ConfigurationSpace synthetic_space() {
  cs::ConfigurationSpace space;
  space.add(cs::tile_factor_param("P0", 2000));
  space.add(cs::tile_factor_param("P1", 2000));
  return space;
}

double synthetic_runtime(const cs::Configuration& config) {
  const double i0 = static_cast<double>(config.index(0));
  const double i1 = static_cast<double>(config.index(1));
  return 1.0 + 0.01 * ((i0 - 16.0) * (i0 - 16.0) +
                       (i1 - 9.0) * (i1 - 9.0));
}

double drive(tuners::Tuner& tuner, std::size_t budget) {
  std::size_t evals = 0;
  while (evals < budget && tuner.has_next()) {
    const auto batch = tuner.next_batch(std::min<std::size_t>(
        8, budget - evals));
    if (batch.empty()) break;
    std::vector<tuners::Trial> trials;
    for (const auto& config : batch) {
      trials.push_back({config, synthetic_runtime(config), true});
    }
    tuner.update(trials);
    evals += trials.size();
  }
  return tuner.best()->runtime_s;
}

TEST(Evolutionary, WarmupThenModel) {
  const auto space = synthetic_space();
  EvolutionarySearch evo(&space, 1);
  EXPECT_FALSE(evo.model_ready());
  drive(evo, 40);
  EXPECT_TRUE(evo.model_ready());
}

TEST(Evolutionary, NoDuplicateProposals) {
  const auto space = synthetic_space();
  EvolutionarySearch evo(&space, 2);
  std::set<std::uint64_t> seen;
  for (int round = 0; round < 12; ++round) {
    const auto batch = evo.next_batch(8);
    std::vector<tuners::Trial> trials;
    for (const auto& config : batch) {
      EXPECT_TRUE(seen.insert(config.hash()).second);
      trials.push_back({config, synthetic_runtime(config), true});
    }
    evo.update(trials);
  }
}

TEST(Evolutionary, ConvergesNearOptimum) {
  const auto space = synthetic_space();
  EvolutionarySearch evo(&space, 3);
  const double best = drive(evo, 96);
  EXPECT_LT(best, 1.10);  // optimum is 1.0
}

TEST(Evolutionary, CompetitiveWithRandomAtEqualBudget) {
  const auto space = synthetic_space();
  double evo_total = 0.0, random_total = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    EvolutionarySearch evo(&space, seed);
    evo_total += drive(evo, 64);
    tuners::RandomTuner random(&space, seed);
    random_total += drive(random, 64);
  }
  EXPECT_LE(evo_total, random_total + 0.05);
}

TEST(Evolutionary, InvalidOptionsThrow) {
  const auto space = synthetic_space();
  EvoOptions bad;
  bad.population = 1;
  EXPECT_THROW(EvolutionarySearch(&space, 1, bad), CheckError);
  EvoOptions bad2;
  bad2.random_fraction = 2.0;
  EXPECT_THROW(EvolutionarySearch(&space, 1, bad2), CheckError);
}

}  // namespace
}  // namespace tvmbo::autoscheduler
