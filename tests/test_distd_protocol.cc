// distd wire protocol: length-prefixed JSON framing over real sockets,
// request/reply serialization round-trips, and the two transports.
#include "distd/protocol.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "distd/socket.h"

namespace tvmbo::distd {
namespace {

/// A connected AF_UNIX socket pair wrapped in the fd-owning Socket class.
struct SocketPair {
  Socket a;
  Socket b;
  SocketPair() {
    int fds[2];
    TVMBO_CHECK_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = Socket(fds[0]);
    b = Socket(fds[1]);
  }
};

TEST(DistdProtocol, FrameRoundTripOverSocketpair) {
  SocketPair pair;
  Json message = Json::object();
  message.set("type", "measure");
  message.set("trial", std::int64_t{42});
  message.set("payload", "hello \"quoted\" \n world");
  ASSERT_EQ(write_frame(pair.a.fd(), message), FrameStatus::kOk);

  Json decoded;
  ASSERT_EQ(read_frame(pair.b.fd(), &decoded, /*timeout_ms=*/1000),
            FrameStatus::kOk);
  EXPECT_EQ(frame_type(decoded), "measure");
  EXPECT_EQ(decoded.at("trial").as_int(), 42);
  EXPECT_EQ(decoded.at("payload").as_string(), "hello \"quoted\" \n world");
}

TEST(DistdProtocol, SequentialFramesKeepBoundaries) {
  SocketPair pair;
  for (int i = 0; i < 5; ++i) {
    Json message = Json::object();
    message.set("type", "heartbeat");
    message.set("i", std::int64_t{i});
    ASSERT_EQ(write_frame(pair.a.fd(), message), FrameStatus::kOk);
  }
  for (int i = 0; i < 5; ++i) {
    Json decoded;
    ASSERT_EQ(read_frame(pair.b.fd(), &decoded, 1000), FrameStatus::kOk);
    EXPECT_EQ(decoded.at("i").as_int(), i);
  }
}

TEST(DistdProtocol, ReadTimesOutWithoutData) {
  SocketPair pair;
  Json decoded;
  EXPECT_EQ(read_frame(pair.b.fd(), &decoded, /*timeout_ms=*/50),
            FrameStatus::kTimeout);
}

TEST(DistdProtocol, ReadTimesOutOnHalfWrittenFrame) {
  SocketPair pair;
  // Announce a 100-byte payload but send only 3 bytes: the deadline
  // applies to the whole frame, so the reader must not block forever.
  const unsigned char prefix[4] = {0, 0, 0, 100};
  ASSERT_EQ(::send(pair.a.fd(), prefix, 4, 0), 4);
  ASSERT_EQ(::send(pair.a.fd(), "{\"t", 3, 0), 3);
  Json decoded;
  EXPECT_EQ(read_frame(pair.b.fd(), &decoded, /*timeout_ms=*/50),
            FrameStatus::kTimeout);
}

TEST(DistdProtocol, ReadReportsClosedPeer) {
  SocketPair pair;
  pair.a.close();
  Json decoded;
  EXPECT_EQ(read_frame(pair.b.fd(), &decoded, 1000), FrameStatus::kClosed);
}

TEST(DistdProtocol, WriteToClosedPeerReportsClosedNotSigpipe) {
  SocketPair pair;
  pair.b.close();
  Json message = Json::object();
  message.set("type", "measure");
  // The first write may land in the (now orphaned) buffer; keep writing
  // until the kernel reports the broken pipe. Must not raise SIGPIPE.
  FrameStatus status = FrameStatus::kOk;
  for (int i = 0; i < 64 && status == FrameStatus::kOk; ++i) {
    status = write_frame(pair.a.fd(), message);
  }
  EXPECT_EQ(status, FrameStatus::kClosed);
}

TEST(DistdProtocol, OversizeLengthPrefixIsProtocolError) {
  SocketPair pair;
  const std::uint32_t huge = kMaxFrameBytes + 1;
  const unsigned char prefix[4] = {
      static_cast<unsigned char>(huge >> 24),
      static_cast<unsigned char>(huge >> 16),
      static_cast<unsigned char>(huge >> 8),
      static_cast<unsigned char>(huge)};
  ASSERT_EQ(::send(pair.a.fd(), prefix, 4, 0), 4);
  Json decoded;
  EXPECT_EQ(read_frame(pair.b.fd(), &decoded, 1000), FrameStatus::kTooLarge);
}

TEST(DistdProtocol, MalformedPayloadIsProtocolError) {
  SocketPair pair;
  const std::string garbage = "this is not json";
  const auto size = static_cast<std::uint32_t>(garbage.size());
  const unsigned char prefix[4] = {
      static_cast<unsigned char>(size >> 24),
      static_cast<unsigned char>(size >> 16),
      static_cast<unsigned char>(size >> 8),
      static_cast<unsigned char>(size)};
  ASSERT_EQ(::send(pair.a.fd(), prefix, 4, 0), 4);
  ASSERT_EQ(::send(pair.a.fd(), garbage.data(),
                   static_cast<ssize_t>(garbage.size()), 0),
            static_cast<ssize_t>(garbage.size()));
  Json decoded;
  EXPECT_EQ(read_frame(pair.b.fd(), &decoded, 1000), FrameStatus::kMalformed);
}

TEST(DistdProtocol, MeasureRequestJsonRoundTrip) {
  MeasureRequest request;
  request.trial = 7;
  request.workload.kernel = "gemm";
  request.workload.size_name = "mini";
  request.workload.dims = {20, 25, 30};
  request.workload.flops = 2.5e4;
  request.tiles = {4, 5, 2, 1, 8};  // incl. trailing parallel knobs
  request.backend = runtime::ExecBackend::kJit;
  request.jit.compiler = "cc";
  request.jit.flags = "-O2 -fPIC";
  request.jit.cache_dir = "/tmp/tvmbo-test-cache";
  request.jit.parallel_threads = 4;
  request.option.repeat = 3;
  request.option.warmup = 1;
  request.option.timeout_s = 0.75;
  request.seed = 0xdeadbeefcafeULL;

  const MeasureRequest decoded = MeasureRequest::from_json(request.to_json());
  EXPECT_EQ(decoded.trial, request.trial);
  EXPECT_EQ(decoded.workload.kernel, "gemm");
  EXPECT_EQ(decoded.workload.size_name, "mini");
  EXPECT_EQ(decoded.workload.dims, request.workload.dims);
  EXPECT_DOUBLE_EQ(decoded.workload.flops, request.workload.flops);
  EXPECT_EQ(decoded.tiles, request.tiles);
  EXPECT_EQ(decoded.backend, runtime::ExecBackend::kJit);
  EXPECT_EQ(decoded.jit.compiler, "cc");
  EXPECT_EQ(decoded.jit.flags, "-O2 -fPIC");
  EXPECT_EQ(decoded.jit.cache_dir, "/tmp/tvmbo-test-cache");
  EXPECT_EQ(decoded.jit.parallel_threads, 4);
  EXPECT_EQ(decoded.option.repeat, 3);
  EXPECT_EQ(decoded.option.warmup, 1);
  EXPECT_DOUBLE_EQ(decoded.option.timeout_s, 0.75);
  EXPECT_EQ(decoded.seed, request.seed);
}

TEST(DistdProtocol, MeasureReplyJsonRoundTripLosslessDoubles) {
  MeasureReply reply;
  reply.trial = 11;
  reply.result.runtime_s = 1.0 / 3.0;  // needs all 17 significant digits
  reply.result.compile_s = 0.1;
  reply.result.energy_j = 2.5;
  reply.result.valid = false;
  reply.result.error = "worker crashed: signal 11 (Segmentation fault)";

  const MeasureReply decoded = MeasureReply::from_json(reply.to_json());
  EXPECT_EQ(decoded.trial, 11u);
  EXPECT_DOUBLE_EQ(decoded.result.runtime_s, reply.result.runtime_s);
  EXPECT_DOUBLE_EQ(decoded.result.compile_s, reply.result.compile_s);
  EXPECT_DOUBLE_EQ(decoded.result.energy_j, reply.result.energy_j);
  EXPECT_FALSE(decoded.result.valid);
  EXPECT_EQ(decoded.result.error, reply.result.error);
}

TEST(DistdSocket, UnixListenAcceptConnect) {
  const std::string path =
      "/tmp/tvmbo-distd-test-" + std::to_string(::getpid()) + ".sock";
  ListenSocket listener = ListenSocket::unix_domain(path);
  EXPECT_EQ(listener.endpoint(), "unix:" + path);

  std::thread client([endpoint = listener.endpoint()] {
    Socket socket = Socket::connect(endpoint);
    Json message = Json::object();
    message.set("type", "hello");
    ASSERT_EQ(write_frame(socket.fd(), message), FrameStatus::kOk);
  });
  std::optional<Socket> accepted = listener.accept(/*timeout_ms=*/5000);
  ASSERT_TRUE(accepted.has_value());
  Json decoded;
  EXPECT_EQ(read_frame(accepted->fd(), &decoded, 5000), FrameStatus::kOk);
  EXPECT_EQ(frame_type(decoded), "hello");
  client.join();
}

TEST(DistdSocket, TcpLoopbackEphemeralPort) {
  ListenSocket listener = ListenSocket::tcp_loopback(/*port=*/0);
  // The ephemeral port must be reflected in the endpoint string.
  EXPECT_EQ(listener.endpoint().rfind("tcp:127.0.0.1:", 0), 0u);
  EXPECT_NE(listener.endpoint(), "tcp:127.0.0.1:0");

  std::thread client([endpoint = listener.endpoint()] {
    Socket socket = Socket::connect(endpoint);
    Json message = Json::object();
    message.set("type", "hello");
    ASSERT_EQ(write_frame(socket.fd(), message), FrameStatus::kOk);
  });
  std::optional<Socket> accepted = listener.accept(5000);
  ASSERT_TRUE(accepted.has_value());
  Json decoded;
  EXPECT_EQ(read_frame(accepted->fd(), &decoded, 5000), FrameStatus::kOk);
  EXPECT_EQ(frame_type(decoded), "hello");
  client.join();
}

TEST(DistdSocket, AcceptTimesOutWithoutClient) {
  ListenSocket listener = ListenSocket::tcp_loopback(0);
  EXPECT_FALSE(listener.accept(/*timeout_ms=*/50).has_value());
}

}  // namespace
}  // namespace tvmbo::distd
