// Scenario: interrupted and resumed autotuning. A first session runs a
// partial budget and saves its performance database (the JSON tuning
// log); a later session reloads it, reconstructs the configurations, and
// warm-starts the Bayesian optimizer — no measurement is repeated and the
// surrogate starts trained.
//
// Build & run:  ./examples/resume_tuning
#include <cstdio>

#include "framework/figures.h"
#include "kernels/polybench.h"
#include "runtime/perf_db.h"
#include "runtime/swing_sim.h"
#include "ytopt/bayes_opt.h"

using namespace tvmbo;

namespace {

constexpr const char* kLogPath = "cholesky_xl_resume_log.jsonl";

double measure(runtime::SwingSimDevice& device,
               const runtime::Workload& workload,
               const cs::ConfigurationSpace& space,
               const cs::Configuration& config) {
  runtime::MeasureInput input;
  input.workload = workload;
  input.tiles = space.values_int(config);
  runtime::MeasureOption option;
  option.repeat = 1;
  return device.measure(input, option).runtime_s;
}

}  // namespace

int main() {
  const auto workload =
      kernels::make_workload("cholesky", kernels::Dataset::kExtraLarge);
  const auto space = kernels::build_space("cholesky", workload.dims);
  runtime::SwingSimDevice device(2023);

  // --- session 1: 30 evaluations, then "interrupted" ----------------------
  {
    ytopt::BayesianOptimizer bo(&space, 1);
    runtime::PerfDatabase db;
    for (int i = 0; i < 30; ++i) {
      const cs::Configuration config = bo.ask();
      const double runtime = measure(device, workload, space, config);
      bo.tell(config, runtime);
      runtime::TrialRecord record;
      record.eval_index = i;
      record.strategy = "ytopt";
      record.workload_id = workload.id();
      record.tiles = space.values_int(config);
      record.runtime_s = runtime;
      db.add(record);
    }
    db.save(kLogPath);
    std::printf("session 1: 30 evaluations, best %.4f s, log saved to %s\n",
                bo.best()->runtime_s, kLogPath);
  }

  // --- session 2: reload, warm-start, continue -----------------------------
  const runtime::PerfDatabase restored = runtime::PerfDatabase::load(kLogPath);
  std::printf("session 2: reloaded %zu records\n", restored.size());

  ytopt::BayesianOptimizer bo(&space, 2);
  std::vector<tuners::Trial> prior;
  for (const auto& record : restored.records()) {
    std::vector<double> values(record.tiles.begin(), record.tiles.end());
    prior.push_back(
        {space.from_values(values), record.runtime_s, record.valid});
  }
  bo.warm_start(prior);
  std::printf("session 2: surrogate warm-started; continuing tuning\n");

  for (int i = 0; i < 30; ++i) {
    const cs::Configuration config = bo.ask();
    bo.tell(config, measure(device, workload, space, config));
  }
  std::printf("session 2: best after 30+30 evaluations: %s at %.4f s "
              "(paper best for this kernel/size: 13.99 s)\n",
              space.to_string(bo.best()->config).c_str(),
              bo.best()->runtime_s);

  // A cold run of 30 fresh evaluations, for contrast.
  ytopt::BayesianOptimizer cold(&space, 2);
  for (int i = 0; i < 30; ++i) {
    const cs::Configuration config = cold.ask();
    cold.tell(config, measure(device, workload, space, config));
  }
  std::printf("cold session with the same 30-eval budget: best %.4f s\n",
              cold.best()->runtime_s);
  return 0;
}
