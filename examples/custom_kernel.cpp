// Scenario: bring your own kernel. Defines a computation tvmbo doesn't
// ship — a 2-D 5-point Jacobi smoothing step — in the TE language,
// validates the schedule against a hand-written reference, builds a
// parameter space from the code mold's placeholders, and tunes it with
// Bayesian optimization against real CPU measurements of the interpreter.
//
// Build & run:  ./examples/custom_kernel
#include <cstdio>

#include "configspace/divisors.h"
#include "framework/code_mold.h"
#include "runtime/cpu_device.h"
#include "te/interp.h"
#include "te/printer.h"
#include "ytopt/bayes_opt.h"

using namespace tvmbo;

namespace {

// B[i][j] = 0.2 * (A[i][j] + A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1])
// on the interior, clamped indices at the borders.
te::Tensor jacobi_step(const te::Tensor& a, std::int64_t n) {
  using namespace te;
  return compute({n, n}, "B", [&](const std::vector<Var>& iv) {
    Expr i = iv[0], j = iv[1];
    auto clamped = [&](Expr x) {
      return max_expr(make_int(0), min_expr(x, make_int(n - 1)));
    };
    Expr center = access(a, {i, j});
    Expr up = access(a, {clamped(i - make_int(1)), j});
    Expr down = access(a, {clamped(i + make_int(1)), j});
    Expr left = access(a, {i, clamped(j - make_int(1))});
    Expr right = access(a, {i, clamped(j + make_int(1))});
    return (center + up + down + left + right) * make_float(0.2);
  });
}

void reference_jacobi(const runtime::NDArray& a, runtime::NDArray& b) {
  const std::int64_t n = a.shape()[0];
  auto clamp_idx = [&](std::int64_t x) {
    return std::max<std::int64_t>(0, std::min(x, n - 1));
  };
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      b.set2(i, j, 0.2 * (a.at2(i, j) + a.at2(clamp_idx(i - 1), j) +
                          a.at2(clamp_idx(i + 1), j) +
                          a.at2(i, clamp_idx(j - 1)) +
                          a.at2(i, clamp_idx(j + 1))));
    }
  }
}

}  // namespace

int main() {
  const std::int64_t n = 64;
  te::Tensor a = te::placeholder({n, n}, "A");
  te::Tensor b = jacobi_step(a, n);

  // The code mold the ytopt flow would hand to the search: the schedule
  // statements with #P0/#P1 placeholders.
  cs::ConfigurationSpace space;
  space.add(cs::tile_factor_param("P0", n));
  space.add(cs::tile_factor_param("P1", n));
  framework::CodeMold mold(
      "yo, yi = s[B].split(y, #P0)\n"
      "xo, xi = s[B].split(x, #P1)\n"
      "s[B].reorder(yo, xo, yi, xi)\n",
      &space);
  std::printf("Code mold with %zu tunable placeholders over a %llu-config "
              "space:\n%s\n",
              mold.placeholders().size(),
              static_cast<unsigned long long>(space.cardinality()),
              mold.text().c_str());

  // Validate one scheduled variant against the reference.
  runtime::NDArray input({n, n});
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      input.set2(i, j, static_cast<double>((3 * i + 5 * j) % 17));
  runtime::NDArray expected({n, n});
  reference_jacobi(input, expected);

  auto build_schedule = [&](std::int64_t ty, std::int64_t tx) {
    te::Schedule sched({b});
    te::Stage& stage = sched[b];
    auto [yo, yi] = stage.split(stage.op_axis()[0], ty);
    auto [xo, xi] = stage.split(stage.op_axis()[1], tx);
    stage.reorder({yo, xo, yi, xi});
    return sched;
  };

  {
    te::Schedule sched = build_schedule(8, 16);
    runtime::NDArray out({n, n});
    te::run_schedule(sched, {{a, &input}, {b, &out}});
    std::printf("Scheduled Jacobi matches reference: %s\n\n",
                out.allclose(expected, 1e-12) ? "yes" : "NO");
  }

  // Tune the tile pair with BO; the metric is the interpreter's wall time
  // (a stand-in for generated-code runtime on a real backend).
  runtime::CpuDevice device;
  ytopt::BayesianOptimizer bo(&space, 7);
  for (int iteration = 0; iteration < 20; ++iteration) {
    const cs::Configuration config = bo.ask();
    const auto tiles = space.values_int(config);
    const std::string configured = mold.render(config);  // Step 2 artifact
    te::Schedule sched = build_schedule(tiles[0], tiles[1]);
    const te::Stmt program = te::lower(sched);
    runtime::NDArray out({n, n});
    runtime::MeasureInput measure_input;
    measure_input.workload.kernel = "jacobi";
    measure_input.workload.dims = {n};
    measure_input.tiles = tiles;
    measure_input.run = [&] {
      te::Interpreter interp;
      interp.bind(a, &input);
      interp.bind(b, &out);
      interp.run(program);
    };
    runtime::MeasureOption option;
    option.repeat = 2;
    const auto result = device.measure(measure_input, option);
    bo.tell(config, result.runtime_s, result.valid);
    if (iteration == 0) {
      std::printf("First generated code variant:\n%s\n", configured.c_str());
    }
  }
  std::printf("Best tile configuration: %s (%.3f ms per step)\n",
              space.to_string(bo.best()->config).c_str(),
              bo.best()->runtime_s * 1e3);
  return 0;
}
