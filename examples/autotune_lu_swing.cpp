// Scenario: the paper's headline experiment, self-contained — autotune the
// PolyBench LU solver (large dataset, N = 2000) on the simulated Swing
// A100 with all five search strategies, then query the performance
// database for the optimization specification of the best configuration
// and save the database as a TVM-style JSON log.
//
// Build & run:  ./examples/autotune_lu_swing
#include <cstdio>

#include "framework/figures.h"
#include "framework/session.h"
#include "kernels/polybench.h"
#include "runtime/swing_sim.h"

using namespace tvmbo;

int main() {
  const autotvm::Task task =
      kernels::make_task("lu", kernels::Dataset::kLarge);
  std::printf("Task %s: workload %s, %llu candidate configurations\n\n",
              task.name.c_str(), task.workload.id().c_str(),
              static_cast<unsigned long long>(
                  task.config.space().cardinality()));

  runtime::SwingSimDevice device(/*seed=*/2023);
  framework::SessionOptions options;
  options.max_evaluations = 100;      // as in the paper's §5
  options.xgb_paper_eval_cap = 56;    // the paper's XGB artifact
  framework::AutotuningSession session(&task, &device, options);

  const auto results = session.run_all();
  std::printf("%s\n",
              framework::render_minimum_summary(
                  results, "LU large — five strategies", 1.659)
                  .c_str());

  // "In the end, we query the performance database to output the
  // optimization specification for the best configuration."
  const framework::SessionResult* winner = nullptr;
  for (const auto& result : results) {
    if (!result.best) continue;
    if (winner == nullptr ||
        result.best->runtime_s < winner->best->runtime_s) {
      winner = &result;
    }
  }
  std::printf("Optimization specification: strategy=%s, tile=%s, "
              "runtime=%.4f s\n",
              winner->strategy.c_str(),
              framework::tiles_to_string(winner->best->tiles).c_str(),
              winner->best->runtime_s);

  // Persist the winning strategy's database in TVM-log style.
  const std::string path = "lu_large_tuning_log.jsonl";
  winner->db.save(path);
  std::printf("Performance database written to %s (%zu records)\n",
              path.c_str(), winner->db.size());

  // Reload it and confirm the round trip.
  const auto restored = runtime::PerfDatabase::load(path);
  std::printf("Reloaded %zu records; best runtime %.4f s\n",
              restored.size(), restored.best()->runtime_s);
  return 0;
}
