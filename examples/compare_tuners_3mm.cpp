// Scenario: compare all five search strategies on a real machine — 3mm
// with a reduced problem size executed natively on this CPU, so every
// measured runtime is a genuine wall-clock measurement (the tile factors
// really change cache behaviour).
//
// Build & run:  ./examples/compare_tuners_3mm
#include <cstdio>

#include "common/stats.h"
#include "framework/figures.h"
#include "framework/session.h"
#include "kernels/polybench.h"
#include "runtime/cpu_device.h"

using namespace tvmbo;

int main() {
  // A CPU-friendly instance: small enough that 5 strategies x 40
  // evaluations finish in seconds, large enough that tiling matters.
  autotvm::Task task = kernels::make_task(
      "3mm", "demo", {96, 108, 120, 132, 144}, /*executable=*/true);
  std::printf("Task %s: workload %s, %llu candidate configurations, "
              "real CPU measurement\n\n",
              task.name.c_str(), task.workload.id().c_str(),
              static_cast<unsigned long long>(
                  task.config.space().cardinality()));

  runtime::CpuDevice device;
  framework::SessionOptions options;
  options.max_evaluations = 40;
  options.autotvm_repeat = 2;
  options.ytopt_repeat = 2;
  // Real measurements: only compile+run time matters, no modeled
  // Python-stack overheads.
  options.charge_strategy_overhead = false;
  framework::AutotuningSession session(&task, &device, options);

  const auto results = session.run_all();
  std::printf("%s\n",
              framework::render_minimum_summary(
                  results, "3mm (96..144) on this CPU", 0.0)
                  .c_str());

  std::printf("Best-so-far trajectories (eval 10 / 25 / 40):\n");
  for (const auto& result : results) {
    std::vector<double> runtimes;
    for (const auto& record : result.db.records()) {
      runtimes.push_back(record.runtime_s);
    }
    const auto best = running_min(runtimes);
    auto at = [&](std::size_t i) {
      return i < best.size() ? best[i] * 1e3 : -1.0;
    };
    std::printf("  %-20s %8.2f ms %8.2f ms %8.2f ms\n",
                result.strategy.c_str(), at(9), at(24), at(39));
  }
  return 0;
}
