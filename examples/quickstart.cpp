// Quickstart: the full tvmbo flow in one file.
//
//  1. Define a tensor computation in the TE language (a matmul).
//  2. Schedule it with the paper's split + reorder pattern and inspect the
//     lowered loop IR.
//  3. Execute it with the interpreter and validate against a reference.
//  4. Autotune the tile factors with ytopt-style Bayesian optimization,
//     measuring real runtimes of the tiled native kernel on the CPU.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "configspace/divisors.h"
#include "kernels/native.h"
#include "kernels/reference.h"
#include "kernels/te_kernels.h"
#include "runtime/cpu_device.h"
#include "te/printer.h"
#include "ytopt/bayes_opt.h"

using namespace tvmbo;

int main() {
  // --- 1. define C = A * B in the TE language -----------------------------
  const std::int64_t M = 256, N = 256, K = 256;
  kernels::GemmTensors gemm = kernels::make_gemm(M, N, K);
  std::printf("Defined %s = %s * %s (%lld x %lld x %lld)\n\n",
              gemm.C->name.c_str(), gemm.A->name.c_str(),
              gemm.B->name.c_str(), static_cast<long long>(M),
              static_cast<long long>(N), static_cast<long long>(K));

  // --- 2. schedule and lower ----------------------------------------------
  te::Schedule sched = kernels::schedule_gemm(gemm, /*ty=*/8, /*tx=*/8);
  const te::Stmt program = te::lower(sched);
  std::printf("Lowered loop IR (split y/x by 8, reorder yo,xo,k,yi,xi):\n%s\n",
              te::to_string(program).c_str());

  // --- 3. execute with the interpreter and validate -----------------------
  const std::int64_t n_small = 32;  // interpreter-sized instance
  kernels::GemmTensors small = kernels::make_gemm(n_small, n_small, n_small);
  runtime::NDArray a({n_small, n_small}), b({n_small, n_small});
  kernels::init_gemm(a, b);
  runtime::NDArray expected({n_small, n_small});
  kernels::ref_matmul(a, b, expected);
  te::Schedule small_sched = kernels::schedule_gemm(small, 4, 8);
  runtime::NDArray c({n_small, n_small});
  te::run_schedule(small_sched,
                   {{small.A, &a}, {small.B, &b}, {small.C, &c}});
  std::printf("Interpreter result matches reference: %s (max |diff| %.2e)\n\n",
              c.allclose(expected, 1e-10) ? "yes" : "NO",
              c.max_abs_diff(expected));

  // --- 4. autotune tile factors with Bayesian optimization ----------------
  // Parameter space: tile factors drawn from the divisors of the extents
  // (exactly how the paper builds its spaces).
  cs::ConfigurationSpace space;
  space.add(cs::tile_factor_param("P0", M));
  space.add(cs::tile_factor_param("P1", N));
  std::printf("Tuning over %llu tile configurations on the CPU...\n",
              static_cast<unsigned long long>(space.cardinality()));

  runtime::NDArray big_a({M, K}), big_b({K, N}), big_c({M, N});
  kernels::init_gemm(big_a, big_b);
  runtime::CpuDevice device;
  ytopt::BayesianOptimizer bo(&space, /*seed=*/42);

  for (int iteration = 0; iteration < 24; ++iteration) {
    const cs::Configuration config = bo.ask();            // Step 1
    const auto tiles = space.values_int(config);          // Step 2
    runtime::MeasureInput input;                          // Step 3
    input.workload.kernel = "gemm";
    input.workload.dims = {M, N, K};
    input.tiles = tiles;
    input.run = [&] {
      kernels::matmul_tiled(big_a, big_b, big_c, tiles[0], tiles[1]);
    };
    runtime::MeasureOption option;
    option.repeat = 2;
    option.warmup = 1;
    const auto result = device.measure(input, option);    // Step 4
    bo.tell(config, result.runtime_s, result.valid);      // Step 5
    std::printf("  eval %2d: %-14s -> %8.3f ms%s\n", iteration,
                space.to_string(config).c_str(), result.runtime_s * 1e3,
                bo.surrogate_ready() ? "" : "  (random warmup)");
  }

  const auto* best = bo.best();
  std::printf("\nBest configuration: %s (%.3f ms)\n",
              space.to_string(best->config).c_str(),
              best->runtime_s * 1e3);
  return 0;
}
